// Package shard is the zero-load-cut decomposition layer of the combined
// solver: it scans an instance's load profile for cut edges (edges used by
// no task), partitions the task set into fully independent sub-instances,
// solves them concurrently, and stitches the per-shard solutions back into
// one solution on the original path.
//
// The decomposition is exact, not heuristic. Tasks occupy contiguous edge
// intervals, so a task never straddles a zero-load edge: every task lies
// entirely inside one maximal run of loaded edges, and the runs share no
// edge. Feasibility and optimality therefore separate — a solution of the
// whole instance restricted to a run is a solution of the run, and the
// union of per-run solutions is a solution of the whole instance. Solving
// the runs independently preserves every per-theorem approximation factor:
// OPT of the instance is the sum of the per-run OPTs.
//
// Shards are trimmed to exactly their loaded runs (leading, trailing and
// inter-run zero-load edges belong to no shard), so a shard's own load
// profile has no interior cut edge and a recursive decomposition would be
// a no-op by construction.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sapalloc/internal/faultinject"
	"sapalloc/internal/model"
	"sapalloc/internal/obs"
	"sapalloc/internal/par"
	"sapalloc/internal/saperr"
	"sapalloc/internal/scratch"
)

// Options configures the decomposition layer.
type Options struct {
	// Disable skips the cut scan entirely and forces the monolithic path.
	// The zero value enables sharding: decomposition never changes
	// feasibility and only ever shrinks the sub-problems.
	Disable bool
	// Verify re-checks every shard's solution against its sub-instance
	// (model.ValidSAP) before stitching — a debug flag for the difftest
	// and fuzz harnesses; an infeasible shard solution fails that shard
	// with saperr.ErrInternal instead of corrupting the stitched result.
	Verify bool
}

// Span is one shard's edge window [Lo, Hi) on the original path: a maximal
// run of edges with non-zero task load. Tasks counts the tasks whose
// interval lies inside the window. The JSON field names are a cross-node
// wire contract (the serve layer ships shard reports between nodes);
// internal/shard's wire test pins them.
type Span struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Tasks int `json:"tasks"`
}

// Overlaps reports whether the span's edge window intersects the half-open
// edge range [lo, hi). The incremental session engine uses it to classify
// shards as dirty (their window touches a delta's changed intervals) or
// reusable.
func (s Span) Overlaps(lo, hi int) bool { return s.Lo < hi && lo < s.Hi }

// Lift translates a solution of the span's sub-instance (local edge
// coordinates, as built by Plan.SubInstance) back onto the original path
// by shifting every placement's interval up by Lo. Heights are untouched —
// the vertical axis is per-edge and the capacity window is shared.
func (s Span) Lift(local *model.Solution) *model.Solution {
	if local == nil {
		return nil
	}
	out := &model.Solution{Items: make([]model.Placement, len(local.Items))}
	for i, p := range local.Items {
		p.Task.Start += s.Lo
		p.Task.End += s.Lo
		out.Items[i] = p
	}
	return out
}

// Plan is the result of the cut scan: the shard spans plus the task set of
// each, in input order. A plan is immutable once computed and is only
// valid for the instance it was computed from.
type Plan struct {
	in    *model.Instance
	spans []Span
	// tasks[i] holds shard i's tasks in original (global) coordinates and
	// original input order, so sub-instances inherit the deterministic
	// task order the solvers' tie-breaks key on.
	tasks [][]model.Task
	// Scan is the wall time of the cut scan.
	Scan time.Duration
}

// Compute scans the load profile and returns the decomposition plan. The
// scan is O(tasks + edges) with scratch-arena temporaries: a difference
// array accumulates per-edge task counts, maximal non-zero runs become the
// spans, and each task is bucketed to the span containing its interval.
func Compute(ctx context.Context, in *model.Instance) *Plan {
	start := time.Now()
	p := &Plan{in: in}
	m := in.Edges()
	if m == 0 || len(in.Tasks) == 0 {
		p.Scan = time.Since(start)
		return p
	}
	a, release := scratch.Acquire(ctx)
	defer release()

	// cover[e] = number of tasks whose interval contains edge e, built as
	// a difference array: +1 at Start, −1 at End, then prefix-summed.
	cover := a.IntsZero(m + 1)
	for _, t := range in.Tasks {
		cover[t.Start]++
		cover[t.End]--
	}
	run := 0
	for e := 0; e < m; e++ {
		if e > 0 {
			cover[e] += cover[e-1]
		}
		if cover[e] > 0 {
			if run == 0 {
				p.spans = append(p.spans, Span{Lo: e})
			}
			run++
		} else if run > 0 {
			p.spans[len(p.spans)-1].Hi = e
			run = 0
		}
	}
	if run > 0 {
		p.spans[len(p.spans)-1].Hi = m
	}
	if len(p.spans) < 2 {
		// Nothing to decompose; skip the bucketing work. The single span
		// (or none, for an all-zero profile) still describes the profile,
		// but Decomposes reports false and callers fall through.
		p.Scan = time.Since(start)
		obs.ShardScanNs.Record(int64(p.Scan))
		return p
	}

	// spanOf[e] = index of the span containing edge e (-1 on cut edges).
	spanOf := a.Ints(m)
	for e := range spanOf {
		spanOf[e] = -1
	}
	for i, s := range p.spans {
		for e := s.Lo; e < s.Hi; e++ {
			spanOf[e] = i
		}
	}
	// Bucket tasks by the span containing their start edge. A task's whole
	// interval has positive load, so it cannot cross a cut edge: the span
	// of Start contains [Start, End). Two passes keep one exact-size slice
	// per shard, appended in input order.
	for _, t := range in.Tasks {
		p.spans[spanOf[t.Start]].Tasks++
	}
	p.tasks = make([][]model.Task, len(p.spans))
	for i, s := range p.spans {
		p.tasks[i] = make([]model.Task, 0, s.Tasks)
	}
	for _, t := range in.Tasks {
		i := spanOf[t.Start]
		p.tasks[i] = append(p.tasks[i], t)
	}
	p.Scan = time.Since(start)
	obs.ShardScanNs.Record(int64(p.Scan))
	return p
}

// Len returns the number of shards.
func (p *Plan) Len() int { return len(p.spans) }

// Decomposes reports whether the plan found at least two shards — the
// condition under which scattering beats the monolithic solve.
func (p *Plan) Decomposes() bool { return len(p.spans) >= 2 }

// Span returns shard i's edge window.
func (p *Plan) Span(i int) Span { return p.spans[i] }

// SubInstance builds shard i's sub-instance: the capacity window is shared
// with the parent read-only (model.SubPath's copy-on-write contract) and
// the shard's tasks are rebased to the window's local coordinates.
func (p *Plan) SubInstance(i int) *model.Instance {
	s := p.spans[i]
	return p.in.SubPath(s.Lo, s.Hi, p.tasks[i])
}

// State classifies how one shard's solve ended.
type State int

const (
	// Completed: the shard solved normally and its solution is stitched in.
	Completed State = iota
	// Failed: the shard's solver returned an error (or panicked, or — with
	// Options.Verify — produced an infeasible solution). It contributes
	// nothing; the stitched result covers the other shards.
	Failed
	// Skipped: the shard was never dispatched — the context was cancelled
	// while earlier shards were still solving.
	Skipped
)

func (s State) String() string {
	switch s {
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MarshalJSON renders the state as its string form for the wire contract.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form written by MarshalJSON.
func (s *State) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "completed":
		*s = Completed
	case "failed":
		*s = Failed
	case "skipped":
		*s = Skipped
	default:
		return fmt.Errorf("shard: unknown state %q", str)
	}
	return nil
}

// Outcome records one shard's result for the Report.
type Outcome struct {
	Span    Span
	State   State
	Weight  int64 // weight of the shard's solution (0 when none)
	Elapsed time.Duration
	Err     error // typed error for Failed/Skipped, nil otherwise
	// Route records how the distributed scatter placed this shard —
	// remote backend, retries, hedging, breaker skips, local fallback.
	// The zero Route is a plain local solve.
	Route Route
}

// outcomeJSON is Outcome's wire form: errors flatten to strings (they do
// not survive a node boundary as typed values) and durations to integer
// nanoseconds. Field names are pinned by TestReportWireContract.
type outcomeJSON struct {
	Span      Span   `json:"span"`
	State     State  `json:"state"`
	Weight    int64  `json:"weight"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Err       string `json:"err,omitempty"`
	Route     Route  `json:"route"`
}

// MarshalJSON renders the outcome in its wire form.
func (o Outcome) MarshalJSON() ([]byte, error) {
	doc := outcomeJSON{Span: o.Span, State: o.State, Weight: o.Weight,
		ElapsedNs: int64(o.Elapsed), Route: o.Route}
	if o.Err != nil {
		doc.Err = o.Err.Error()
	}
	return json.Marshal(doc)
}

// UnmarshalJSON parses the wire form. A non-empty err field becomes an
// opaque error: typed error chains do not cross node boundaries.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	var doc outcomeJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	*o = Outcome{Span: doc.Span, State: doc.State, Weight: doc.Weight,
		Elapsed: time.Duration(doc.ElapsedNs), Route: doc.Route}
	if doc.Err != "" {
		o.Err = errors.New(doc.Err)
	}
	return nil
}

// Report is the structured account of a sharded solve, attached to the
// core Result so callers and the CLI can see the decomposition. Its JSON
// form (field names pinned by TestReportWireContract) is part of the serve
// wire format: a coordinator's response may embed the report, so the names
// are a cross-node contract, not an implementation detail.
type Report struct {
	// Shards is the shard count (== len(Outcomes)).
	Shards int `json:"shards"`
	// Completed/Failed/Skipped partition the shards by outcome.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
	// LargestTasks is the task count of the biggest shard — the critical
	// path of the scatter.
	LargestTasks int `json:"largest_tasks"`
	// Scan, Solve and Stitch are the wall times of the three stages
	// (Solve is the wall clock of the whole scatter, not the sum of the
	// per-shard times), serialised as integer nanoseconds.
	Scan   time.Duration `json:"scan_ns"`
	Solve  time.Duration `json:"solve_ns"`
	Stitch time.Duration `json:"stitch_ns"`
	// Outcomes has one entry per shard, in span (left-to-right) order.
	Outcomes []Outcome `json:"outcomes"`
}

// Degraded reports whether any shard failed or was skipped: the stitched
// solution is then feasible but covers only the completed shards.
func (r *Report) Degraded() bool { return r.Failed > 0 || r.Skipped > 0 }

// String renders a compact summary for CLI diagnostics.
func (r *Report) String() string {
	return fmt.Sprintf("shards %d (completed %d, failed %d, skipped %d), largest %d tasks, scan %v, solve %v, stitch %v",
		r.Shards, r.Completed, r.Failed, r.Skipped, r.LargestTasks,
		r.Scan.Round(time.Microsecond), r.Solve.Round(time.Microsecond), r.Stitch.Round(time.Microsecond))
}

// Solver solves one shard's sub-instance. The index identifies the shard
// (callers typically record per-shard diagnostics in an index-addressed
// slice); the sub-instance is in local coordinates.
type Solver func(ctx context.Context, index int, sub *model.Instance) (*model.Solution, error)

// Scatter solves every shard of the plan concurrently under the workers
// bound and stitches the completed shards' solutions back into global
// coordinates, concatenated in span order — the stitched solution is
// deterministic for every workers value, because each shard writes into
// its own slot and the stitch runs in fixed order after the join.
//
// Cross-shard feasibility needs no re-check: shards share no edge, so the
// per-shard feasibility (guaranteed by the solver, or re-verified under
// Options.Verify) is global feasibility.
//
// A shard whose solver errors or panics fails alone; Scatter returns an
// error only when no shard completed — the first shard error, or a typed
// cancellation when the context died before any shard ran. On partial
// cancellation the completed shards form a feasible partial solution and
// the Report says which shards were lost.
func (p *Plan) Scatter(ctx context.Context, workers int, opts Options, solve Solver) (*model.Solution, *Report, error) {
	start := time.Now()
	obs.ShardSolves.Inc()
	obs.ShardCount.Record(int64(p.Len()))
	type out struct {
		sol     *model.Solution // local coordinates
		err     error
		elapsed time.Duration
		ran     bool
	}
	outs := make([]out, p.Len())
	// Shard errors are collected in the slots, never returned through
	// ForEachCtx: one shard failing must not abort its siblings.
	_ = par.ForEachCtx(ctx, p.Len(), workers, func(i int) error {
		t0 := time.Now()
		var sol *model.Solution
		err := func() (err error) {
			// Per-shard containment: a panicking shard degrades to Failed
			// instead of killing the scatter.
			defer saperr.Contain(&err)
			faultinject.Fire(ctx, "shard/solve")
			// One arena per shard worker; the solver's own fan-outs
			// shadow it again per arm/class worker.
			a := scratch.Get()
			defer scratch.Put(a)
			sub := p.SubInstance(i)
			obs.ShardTasks.Record(int64(len(sub.Tasks)))
			s, err := solve(scratch.With(ctx, a), i, sub)
			if err != nil {
				return err
			}
			if opts.Verify {
				if verr := model.ValidSAP(sub, s); verr != nil {
					return fmt.Errorf("%w: shard %d produced an infeasible solution: %v", saperr.ErrInternal, i, verr)
				}
			}
			sol = s
			return nil
		}()
		outs[i] = out{sol: sol, err: err, elapsed: time.Since(t0), ran: true}
		return nil
	})
	solveElapsed := time.Since(start)

	stitchStart := time.Now()
	rep := &Report{Shards: p.Len(), Solve: solveElapsed, Scan: p.Scan}
	total := 0
	for i := range outs {
		o := &outs[i]
		oc := Outcome{Span: p.spans[i], Elapsed: o.elapsed}
		switch {
		case !o.ran:
			oc.State = Skipped
			oc.Err = saperr.Cancelled(ctx.Err())
			rep.Skipped++
		case o.err != nil:
			oc.State = Failed
			oc.Err = fmt.Errorf("shard %d (edges [%d,%d)): %w", i, p.spans[i].Lo, p.spans[i].Hi, o.err)
			rep.Failed++
		default:
			oc.State = Completed
			oc.Weight = o.sol.Weight()
			rep.Completed++
			total += len(o.sol.Items)
		}
		if p.spans[i].Tasks > rep.LargestTasks {
			rep.LargestTasks = p.spans[i].Tasks
		}
		rep.Outcomes = append(rep.Outcomes, oc)
	}
	if rep.Completed == 0 {
		var first error
		for _, oc := range rep.Outcomes {
			if oc.State == Failed {
				first = oc.Err
				break
			}
		}
		if first == nil {
			first = saperr.Cancelled(ctx.Err())
		}
		return nil, rep, fmt.Errorf("no shard completed: %w", first)
	}
	// Stitch in span order: shards are disjoint edge windows left to
	// right, so concatenation preserves both feasibility and determinism.
	sol := &model.Solution{Items: make([]model.Placement, 0, total)}
	for i, o := range outs {
		if o.sol == nil {
			continue
		}
		lifted := p.spans[i].Lift(o.sol)
		sol.Items = append(sol.Items, lifted.Items...)
	}
	rep.Stitch = time.Since(stitchStart)
	obs.ShardStitchNs.Record(int64(rep.Stitch))
	return sol, rep, nil
}
