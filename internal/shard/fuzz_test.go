package shard_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"sapalloc/internal/core"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/oracle"
	"sapalloc/internal/shard"
)

// FuzzShardStitch is the decomposition soundness fuzzer: generate a random
// archipelago, solve it through the full combined pipeline (which takes the
// sharded path whenever a zero-load cut exists), oracle-check the stitched
// solution against the ORIGINAL instance, and require it to be byte-
// identical to the manual stitch of independent solves of each shard's
// sub-instance. With gap=0 the islands fuse and the fuzzer instead pins the
// fall-through: no decomposition, no Shards report.
func FuzzShardStitch(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(2), uint8(6), uint8(0))
	f.Add(int64(2), uint8(5), uint8(6), uint8(1), uint8(8), uint8(1))
	f.Add(int64(3), uint8(2), uint8(3), uint8(3), uint8(10), uint8(2))
	f.Add(int64(4), uint8(4), uint8(5), uint8(0), uint8(7), uint8(3)) // gap=0: no cut between islands
	f.Fuzz(func(t *testing.T, seed int64, islands, islandEdges, gapEdges, tasksPer, class uint8) {
		cfg := gen.ArchipelagoConfig{
			Seed:           seed,
			Islands:        1 + int(islands%6),
			IslandEdges:    1 + int(islandEdges%8),
			GapEdges:       int(gapEdges % 4),
			TasksPerIsland: 1 + int(tasksPer%12),
			CapLo:          16, CapHi: 65,
			Class: gen.Class(class % 4),
		}
		in := gen.Archipelago(cfg)
		replay := cfg.Replay()
		if err := in.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v (replay: %s)", err, replay)
		}

		full, err := core.Solve(in, core.Params{Shard: shard.Options{Verify: true}})
		if err != nil {
			t.Fatalf("combined solve: %v (replay: %s)", err, replay)
		}
		if oerr := oracle.CheckSAP(in, full.Solution); oerr != nil {
			t.Fatalf("stitched solution infeasible: %v (replay: %s)", oerr, replay)
		}

		plan := shard.Compute(context.Background(), in)
		if !plan.Decomposes() {
			if full.Shards != nil {
				t.Fatalf("no cut edge but Result.Shards = %+v (replay: %s)", full.Shards, replay)
			}
			return
		}
		if full.Shards == nil || full.Shards.Shards != plan.Len() {
			t.Fatalf("Result.Shards = %+v, want %d shards (replay: %s)", full.Shards, plan.Len(), replay)
		}

		// Manual stitch: solve each shard's sub-instance independently
		// through the same public pipeline and lift the pieces. The
		// determinism contract makes this byte-identical to the sharded
		// solve's stitched output.
		var want model.Solution
		var wantWeight int64
		for i := 0; i < plan.Len(); i++ {
			sub := plan.SubInstance(i)
			r, err := core.Solve(sub, core.Params{})
			if err != nil {
				t.Fatalf("shard %d solve: %v (replay: %s)", i, err, replay)
			}
			if oerr := oracle.CheckSAP(sub, r.Solution); oerr != nil {
				t.Fatalf("shard %d solution infeasible: %v (replay: %s)", i, oerr, replay)
			}
			lifted := plan.Span(i).Lift(r.Solution)
			want.Items = append(want.Items, lifted.Items...)
			wantWeight += r.Solution.Weight()
		}
		if full.Solution.Weight() != wantWeight {
			t.Fatalf("stitched weight %d, want sum of shard weights %d (replay: %s)",
				full.Solution.Weight(), wantWeight, replay)
		}
		if !reflect.DeepEqual(full.Solution.Items, want.Items) {
			t.Fatalf("stitched solution differs from manual per-shard stitch (replay: %s)\n got: %+v\nwant: %+v",
				replay, full.Solution.Items, want.Items)
		}
	})
}

// FuzzShardWire round-trips a solved shard through the /v1/shard codec:
// the request side (model instance JSON) must reproduce the sub-instance
// exactly, and the response side (WireResponse) must reproduce the solved
// placements byte-for-byte in solver order, with the reconstruction
// oracle-checked against the original sub-instance. This is the exact
// transformation the distributed scatter applies per shard, so any codec
// drift the fuzzer finds is a distributed-correctness bug, not a cosmetic
// one.
func FuzzShardWire(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(9), uint8(0))
	f.Add(int64(2), uint8(7), uint8(14), uint8(1))
	f.Add(int64(3), uint8(2), uint8(5), uint8(2))
	f.Add(int64(4), uint8(10), uint8(20), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, edges, tasks, class uint8) {
		cfg := gen.Config{
			Seed:  seed,
			Edges: 1 + int(edges%12),
			Tasks: 1 + int(tasks%24),
			CapLo: 16, CapHi: 65,
			Class: gen.Class(class % 4),
		}
		in := gen.Random(cfg)
		replay := cfg.Replay()

		// Request side: the shard sub-instance crosses the wire as model
		// instance JSON and must survive with task order intact (the
		// solvers' tie-breaks key on it).
		var req bytes.Buffer
		if err := in.WriteJSON(&req); err != nil {
			t.Fatalf("encode request: %v (replay: %s)", err, replay)
		}
		decoded, err := model.ReadInstanceJSON(bytes.NewReader(req.Bytes()))
		if err != nil {
			t.Fatalf("decode request: %v (replay: %s)", err, replay)
		}
		if !reflect.DeepEqual(decoded, in) {
			t.Fatalf("request round trip drifted (replay: %s)\n got: %+v\nwant: %+v", replay, decoded, in)
		}

		// Response side: solve, encode, decode, reconstruct, oracle-check.
		res, err := core.Solve(decoded, core.Params{})
		if err != nil {
			t.Fatalf("solve: %v (replay: %s)", err, replay)
		}
		degraded := res.Report != nil && res.Report.Degraded
		var resp bytes.Buffer
		if err := shard.NewWireResponse(res.Solution, res.Winner.String(), degraded, nil).Encode(&resp); err != nil {
			t.Fatalf("encode response: %v (replay: %s)", err, replay)
		}
		wr, err := shard.DecodeWireResponse(&resp)
		if err != nil {
			t.Fatalf("decode response: %v (replay: %s)", err, replay)
		}
		if wr.Degraded != degraded || wr.Winner != res.Winner.String() {
			t.Fatalf("response metadata drifted: %+v (replay: %s)", wr, replay)
		}
		sol, err := wr.Solution(decoded)
		if err != nil {
			t.Fatalf("reconstruct solution: %v (replay: %s)", err, replay)
		}
		if !reflect.DeepEqual(sol.Items, res.Solution.Items) {
			t.Fatalf("solution round trip drifted (replay: %s)\n got: %+v\nwant: %+v",
				replay, sol.Items, res.Solution.Items)
		}
		if oerr := oracle.CheckSAP(in, sol); oerr != nil {
			t.Fatalf("reconstructed solution infeasible: %v (replay: %s)", oerr, replay)
		}
	})
}
