package shard_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"sapalloc/internal/model"
	"sapalloc/internal/saperr"
	"sapalloc/internal/shard"
)

// islands3 is a hand-built three-island instance on 10 edges:
//
//	edges   0 1 | 2 | 3 4 5 | 6 7 | 8 | 9
//	tasks   [0,2)   [3,5)         [8,9)
//	              [5,6) shares span with [3,5) (touching intervals, edge 5 loaded)
//
// Cut edges: 2, 6, 7, 9. Spans: [0,2), [3,6), [8,9).
func islands3() *model.Instance {
	return &model.Instance{
		Capacity: []int64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
		Tasks: []model.Task{
			{ID: 0, Start: 0, End: 2, Demand: 3, Weight: 5},
			{ID: 1, Start: 3, End: 5, Demand: 4, Weight: 7},
			{ID: 2, Start: 5, End: 6, Demand: 2, Weight: 1},
			{ID: 3, Start: 8, End: 9, Demand: 6, Weight: 9},
		},
	}
}

func TestComputeSpans(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	want := []shard.Span{{Lo: 0, Hi: 2, Tasks: 1}, {Lo: 3, Hi: 6, Tasks: 2}, {Lo: 8, Hi: 9, Tasks: 1}}
	if p.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(want))
	}
	if !p.Decomposes() {
		t.Fatal("Decomposes = false, want true")
	}
	for i, w := range want {
		if got := p.Span(i); got != w {
			t.Errorf("Span(%d) = %+v, want %+v", i, got, w)
		}
	}
}

func TestComputeSubInstanceRebasesAndSharesCapacity(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	sub := p.SubInstance(1) // edges [3,6), tasks 1 and 2
	if got, want := len(sub.Capacity), 3; got != want {
		t.Fatalf("sub edges = %d, want %d", got, want)
	}
	if &sub.Capacity[0] != &in.Capacity[3] {
		t.Error("sub capacity window is a copy; want it shared with the parent (copy-on-write contract)")
	}
	wantTasks := []model.Task{
		{ID: 1, Start: 0, End: 2, Demand: 4, Weight: 7},
		{ID: 2, Start: 2, End: 3, Demand: 2, Weight: 1},
	}
	if !reflect.DeepEqual(sub.Tasks, wantTasks) {
		t.Errorf("sub tasks = %+v, want %+v", sub.Tasks, wantTasks)
	}
	// The rebased sub-instance must be self-consistent.
	if err := sub.Validate(); err != nil {
		t.Errorf("sub-instance invalid: %v", err)
	}
}

func TestComputeDegenerate(t *testing.T) {
	// Dense: every edge loaded → one span, no decomposition.
	dense := &model.Instance{
		Capacity: []int64{8, 8, 8},
		Tasks:    []model.Task{{ID: 0, Start: 0, End: 3, Demand: 1, Weight: 1}},
	}
	if p := shard.Compute(context.Background(), dense); p.Decomposes() {
		t.Errorf("dense instance decomposed into %d spans", p.Len())
	}
	// Empty task set → no spans.
	empty := &model.Instance{Capacity: []int64{8, 8}}
	if p := shard.Compute(context.Background(), empty); p.Len() != 0 || p.Decomposes() {
		t.Errorf("empty instance: Len=%d Decomposes=%v, want 0/false", p.Len(), p.Decomposes())
	}
	// Every edge a cut between singleton tasks: n singleton shards.
	n := 6
	sing := &model.Instance{Capacity: make([]int64, 2*n-1)}
	for e := range sing.Capacity {
		sing.Capacity[e] = 4
	}
	for i := 0; i < n; i++ {
		sing.Tasks = append(sing.Tasks, model.Task{ID: i, Start: 2 * i, End: 2*i + 1, Demand: 2, Weight: int64(i + 1)})
	}
	p := shard.Compute(context.Background(), sing)
	if p.Len() != n {
		t.Fatalf("singleton instance: %d spans, want %d", p.Len(), n)
	}
	for i := 0; i < n; i++ {
		if s := p.Span(i); s.Lo != 2*i || s.Hi != 2*i+1 || s.Tasks != 1 {
			t.Errorf("span %d = %+v, want {%d %d 1}", i, s, 2*i, 2*i+1)
		}
	}
}

func TestLift(t *testing.T) {
	s := shard.Span{Lo: 5, Hi: 8}
	local := &model.Solution{Items: []model.Placement{
		{Task: model.Task{ID: 7, Start: 1, End: 3, Demand: 2, Weight: 4}, Height: 6},
	}}
	got := s.Lift(local)
	want := model.Placement{Task: model.Task{ID: 7, Start: 6, End: 8, Demand: 2, Weight: 4}, Height: 6}
	if len(got.Items) != 1 || got.Items[0] != want {
		t.Errorf("Lift = %+v, want %+v", got.Items, want)
	}
	// Lift copies; the local solution must be untouched.
	if local.Items[0].Task.Start != 1 {
		t.Error("Lift mutated the local solution")
	}
}

// heaviest schedules the single heaviest task of the sub-instance at height
// zero — trivially feasible, deterministic, and distinct per shard.
func heaviest(_ context.Context, _ int, sub *model.Instance) (*model.Solution, error) {
	best := 0
	for i, t := range sub.Tasks {
		if t.Weight > sub.Tasks[best].Weight {
			best = i
		}
	}
	return &model.Solution{Items: []model.Placement{{Task: sub.Tasks[best], Height: 0}}}, nil
}

func TestScatterStitch(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	for _, workers := range []int{1, 2, 8} {
		sol, rep, err := p.Scatter(context.Background(), workers, shard.Options{Verify: true}, heaviest)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Shards != 3 || rep.Completed != 3 || rep.Failed != 0 || rep.Skipped != 0 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
		if rep.Degraded() {
			t.Errorf("workers=%d: degraded report for a clean scatter", workers)
		}
		if rep.LargestTasks != 2 {
			t.Errorf("workers=%d: LargestTasks = %d, want 2", workers, rep.LargestTasks)
		}
		// Heaviest per span: task 0 (w5), task 1 (w7), task 3 (w9) — in
		// span order, back in global coordinates.
		wantIDs := []int{0, 1, 3}
		if len(sol.Items) != len(wantIDs) {
			t.Fatalf("workers=%d: %d placements, want %d", workers, len(sol.Items), len(wantIDs))
		}
		for i, id := range wantIDs {
			if sol.Items[i].Task.ID != id {
				t.Errorf("workers=%d: placement %d is task %d, want %d", workers, i, sol.Items[i].Task.ID, id)
			}
		}
		if err := model.ValidSAP(in, sol); err != nil {
			t.Errorf("workers=%d: stitched solution infeasible on the parent: %v", workers, err)
		}
		if got, want := sol.Weight(), int64(5+7+9); got != want {
			t.Errorf("workers=%d: weight %d, want %d", workers, got, want)
		}
	}
}

func TestScatterShardFailureDegrades(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	boom := errors.New("boom")
	solve := func(ctx context.Context, i int, sub *model.Instance) (*model.Solution, error) {
		if i == 1 {
			return nil, boom
		}
		return heaviest(ctx, i, sub)
	}
	sol, rep, err := p.Scatter(context.Background(), 1, shard.Options{}, solve)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if rep.Completed != 2 || rep.Failed != 1 || !rep.Degraded() {
		t.Fatalf("report %+v, want 2 completed / 1 failed / degraded", rep)
	}
	if !errors.Is(rep.Outcomes[1].Err, boom) {
		t.Errorf("outcome err = %v, want wrapped boom", rep.Outcomes[1].Err)
	}
	if got, want := sol.Weight(), int64(5+9); got != want {
		t.Errorf("partial weight %d, want %d", got, want)
	}
}

func TestScatterContainsShardPanic(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	solve := func(ctx context.Context, i int, sub *model.Instance) (*model.Solution, error) {
		if i == 0 {
			panic("shard bug")
		}
		return heaviest(ctx, i, sub)
	}
	sol, rep, err := p.Scatter(context.Background(), 1, shard.Options{}, solve)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	if rep.Failed != 1 || rep.Completed != 2 {
		t.Fatalf("report %+v, want the panicking shard contained as Failed", rep)
	}
	if !errors.Is(rep.Outcomes[0].Err, saperr.ErrInternal) {
		t.Errorf("outcome err = %v, want saperr.ErrInternal", rep.Outcomes[0].Err)
	}
	if sol == nil || sol.Weight() != 7+9 {
		t.Errorf("partial solution = %+v, want weight 16", sol)
	}
}

func TestScatterVerifyCatchesInfeasibleShard(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	solve := func(_ context.Context, i int, sub *model.Instance) (*model.Solution, error) {
		// Height at full capacity: top = capacity + demand > capacity.
		return &model.Solution{Items: []model.Placement{{Task: sub.Tasks[0], Height: sub.Capacity[sub.Tasks[0].Start]}}}, nil
	}
	_, rep, err := p.Scatter(context.Background(), 1, shard.Options{Verify: true}, solve)
	if err == nil {
		t.Fatal("scatter accepted infeasible shard solutions with Verify on")
	}
	if !errors.Is(err, saperr.ErrInternal) {
		t.Errorf("err = %v, want saperr.ErrInternal", err)
	}
	if rep.Failed != rep.Shards {
		t.Errorf("report %+v, want every shard failed verification", rep)
	}
}

func TestScatterAllFailReturnsFirstError(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	solve := func(_ context.Context, i int, _ *model.Instance) (*model.Solution, error) {
		return nil, fmt.Errorf("shard %d refused", i)
	}
	sol, rep, err := p.Scatter(context.Background(), 1, shard.Options{}, solve)
	if err == nil || sol != nil {
		t.Fatalf("got sol=%v err=%v, want nil solution and an error", sol, err)
	}
	if rep.Completed != 0 || rep.Failed != rep.Shards {
		t.Errorf("report %+v, want all failed", rep)
	}
}

func TestScatterCancelledBeforeStart(t *testing.T) {
	in := islands3()
	p := shard.Compute(context.Background(), in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, rep, err := p.Scatter(ctx, 1, shard.Options{}, heaviest)
	if err == nil || sol != nil {
		t.Fatalf("got sol=%v err=%v, want typed cancellation", sol, err)
	}
	if !saperr.IsCancelled(err) {
		t.Errorf("err = %v, want a cancellation", err)
	}
	if rep.Skipped != rep.Shards {
		t.Errorf("report %+v, want all shards skipped", rep)
	}
}
