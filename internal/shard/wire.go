package shard

import (
	"encoding/json"
	"fmt"
	"io"

	"sapalloc/internal/model"
	"sapalloc/internal/saperr"
)

// The /v1/shard wire codec, shared by the serving layer (encode side) and
// the distributed pool client (decode side). A shard request body is a
// plain model instance JSON document (model.WriteJSON / ReadInstanceJSON —
// the shard's sub-instance in its local coordinates); the response is a
// WireResponse.
//
// Item order is load-bearing: the client stitches a remote shard's items
// exactly as received, and the distributed-vs-local byte-identity contract
// (internal/difftest's dist matrix) requires the backend to emit its
// solver's native placement order, NOT a sorted view. Both sides of the
// codec therefore preserve order, and FuzzShardWire round-trips it.

// WireItem is one placed task on the wire: the task is named by ID (the
// receiver owns the task data — it sent the instance) plus its height.
type WireItem struct {
	TaskID int   `json:"task_id"`
	Height int64 `json:"height"`
}

// WireStats is the per-arm aggregate block of a shard response: the
// backend's core result reduced to plain numbers, so the client's parent
// solve can sum remotely solved shards into its Result (arm weights, task
// counts, winner) exactly as it sums locally solved ones. Arms are indexed
// small, medium, large; states and the winner use the core package's
// numeric Arm/ArmState values (the codec deliberately does not import core
// — core imports this package).
type WireStats struct {
	// Winner is the numeric arm index that produced the shard's solution.
	Winner int `json:"winner_arm"`
	// ArmTasks counts the shard's tasks per arm class after partitioning.
	ArmTasks [3]int `json:"arm_tasks"`
	// ArmWeights are the per-arm solution weights (the shard's solution is
	// the best-of, so its weight is the max of these).
	ArmWeights [3]int64 `json:"arm_weights"`
	// ArmStates are the numeric per-arm completion states.
	ArmStates [3]int `json:"arm_states"`
	// ArmErrs carry the per-arm error text for failed or skipped arms
	// ("" = no error). Text only: typed errors do not cross the wire.
	ArmErrs [3]string `json:"arm_errs"`
}

// WireResponse is the response document of POST /v1/shard.
type WireResponse struct {
	// Weight is the declared solution weight; Solution re-derives it from
	// the items and rejects a mismatch as a corrupt response.
	Weight int64 `json:"weight"`
	// Winner names the solver arm that produced the solution (diagnostic).
	Winner string `json:"winner"`
	// Degraded reports that the backend's solve hit its deadline and
	// returned a feasible incumbent; degraded responses are never cached
	// and mark the parent solve report degraded.
	Degraded bool `json:"degraded,omitempty"`
	// Stats is the backend's per-arm aggregate block; nil in responses from
	// backends that predate it, in which case the client's parent result
	// simply lacks this shard's arm diagnostics (the solution is unaffected).
	Stats *WireStats `json:"stats,omitempty"`
	// Items are the placements in the backend solver's native order.
	Items []WireItem `json:"items"`
}

// NewWireResponse builds the wire document for a solved shard, preserving
// the solution's item order. stats may be nil.
func NewWireResponse(sol *model.Solution, winner string, degraded bool, stats *WireStats) *WireResponse {
	w := &WireResponse{Weight: sol.Weight(), Winner: winner, Degraded: degraded,
		Stats: stats, Items: make([]WireItem, 0, len(sol.Items))}
	for _, p := range sol.Items {
		w.Items = append(w.Items, WireItem{TaskID: p.Task.ID, Height: p.Height})
	}
	return w
}

// Encode writes the document as a single JSON object with a trailing
// newline (the serving layer's response framing).
func (w *WireResponse) Encode(out io.Writer) error {
	if w.Items == nil {
		w.Items = []WireItem{} // render as [], not null
	}
	body, err := json.Marshal(w)
	if err != nil {
		return fmt.Errorf("%w: encode shard response: %v", saperr.ErrInternal, err)
	}
	body = append(body, '\n')
	_, err = out.Write(body)
	return err
}

// DecodeWireResponse parses a response document. It is a trust boundary on
// the client side: malformed JSON is rejected with a typed unavailability
// error so the caller retries another backend instead of crashing.
func DecodeWireResponse(r io.Reader) (*WireResponse, error) {
	var doc WireResponse
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, saperr.Unavailable("decode shard response: %v", err)
	}
	return &doc, nil
}

// Solution reconstructs the solution against the shard's sub-instance,
// binding each wire item to its task by ID in wire order. Unknown IDs,
// duplicate IDs, and a declared weight that disagrees with the items are
// all rejected as corrupt responses (typed saperr.ErrUnavailable — the
// response, not the request, is at fault, so the client may retry
// elsewhere). Feasibility is NOT checked here; the caller validates the
// reconstructed solution against the sub-instance before accepting it.
func (w *WireResponse) Solution(sub *model.Instance) (*model.Solution, error) {
	sol := &model.Solution{Items: make([]model.Placement, 0, len(w.Items))}
	seen := make(map[int]bool, len(w.Items))
	for _, it := range w.Items {
		task, ok := sub.TaskByID(it.TaskID)
		if !ok {
			return nil, saperr.Unavailable("shard response names unknown task %d", it.TaskID)
		}
		if seen[it.TaskID] {
			return nil, saperr.Unavailable("shard response names task %d twice", it.TaskID)
		}
		seen[it.TaskID] = true
		sol.Items = append(sol.Items, model.Placement{Task: task, Height: it.Height})
	}
	if got := sol.Weight(); got != w.Weight {
		return nil, saperr.Unavailable("shard response declares weight %d but items weigh %d", w.Weight, got)
	}
	return sol, nil
}
