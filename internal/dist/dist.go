// Package dist is the distributed shard fan-out client: it turns the
// in-process shard solver of internal/shard into a scatter over a pool of
// sapserved backends, wrapped in a robustness envelope so a sick pool
// degrades smoothly instead of failing the solve.
//
// Routing is rendezvous (highest-random-weight) hashing keyed on the
// shard's canonical sapcache key: every client ranks every backend for
// every shard the same way, so identical shards from different clients
// land on the same backend and hit its exact-bytes response cache, and
// removing a backend only reroutes the shards that were on it.
//
// The per-shard envelope, in escalation order:
//
//   - bounded retries with decorrelated-jitter exponential backoff, each
//     retry rotating to the next-ranked backend; the jitter RNG is seeded
//     from the shard key so a replayed solve retries on the same schedule;
//   - one hedged request to the next-ranked healthy backend once the
//     primary has been quiet for max(HedgeAfter, primary's recent p95);
//     first success wins and the loser is cancelled;
//   - per-backend circuit breakers (consecutive failures or windowed error
//     rate trip them; cooldown, then probe-limited half-open; an optional
//     active /healthz prober walks tripped breakers back without traffic);
//   - local fallback: once remote attempts are exhausted — or every
//     breaker is open — the shard is solved in-process by the same solver
//     the non-distributed path uses. A full partition therefore degrades
//     to exactly the local sharded solve, never to an error.
//
// Degradation never compromises the byte-identity contract: backends solve
// shards with the same deterministic pipeline the local fallback runs, so
// every path — remote, hedged, retried, fallen back — produces the same
// bytes, and which path won is recorded only as diagnostics in
// shard.Route.
package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sapalloc/internal/faultinject"
	"sapalloc/internal/model"
	"sapalloc/internal/obs"
	"sapalloc/internal/sapcache"
	"sapalloc/internal/saperr"
	"sapalloc/internal/shard"
)

// maxShardResponseBytes caps how much of a backend response the client will
// buffer; a response this large is corrupt, not big.
const maxShardResponseBytes = 64 << 20

// Config tunes a Pool. Durations and counts follow the repo convention:
// zero means "use the default", negative means "disable the feature" where
// disabling is meaningful.
type Config struct {
	// Peers are backend base URLs (e.g. http://10.0.0.2:8080). An empty
	// pool distributes nothing: Distributor returns the local solver
	// unchanged.
	Peers []string
	// MaxAttempts bounds remote attempts per shard, hedges excluded
	// (default 3; negative → a single attempt, no retries).
	MaxAttempts int
	// PerTryTimeout bounds each attempt, carved from the parent solve
	// context (default 2s; negative → attempts run to the parent
	// deadline).
	PerTryTimeout time.Duration
	// HedgeAfter is the floor of the hedging trigger; the effective delay
	// is max(HedgeAfter, primary backend's recent p95 latency). Default
	// 50ms; negative disables hedging.
	HedgeAfter time.Duration
	// BackoffBase and BackoffCap bound the decorrelated-jitter retry
	// backoff (defaults 5ms and 250ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerFailures is the consecutive-failure trip threshold (default
	// 5; negative disables circuit breaking entirely).
	BreakerFailures int
	// BreakerWindow, BreakerRate and BreakerMinSamples configure the
	// second trip detector: the breaker also opens when at least
	// BreakerMinSamples results landed inside BreakerWindow and the
	// failing fraction reaches BreakerRate (defaults 10s, 0.5, 10).
	BreakerWindow     time.Duration
	BreakerRate       float64
	BreakerMinSamples int
	// BreakerCooldown holds an open breaker before it admits half-open
	// probes (default 5s); BreakerProbes successes close it (default 2).
	BreakerCooldown time.Duration
	BreakerProbes   int
	// HealthInterval enables the active /healthz prober at that period.
	// Zero leaves it off: with no prober, tripped breakers recover only
	// via half-open request probes.
	HealthInterval time.Duration
	// Client is the HTTP client to use (default: a fresh client with no
	// overall timeout — per-try contexts bound each call).
	Client *http.Client

	// now overrides the clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts < 0 {
		c.MaxAttempts = 1
	}
	if c.PerTryTimeout == 0 {
		c.PerTryTimeout = 2 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 50 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = 250 * time.Millisecond
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.BreakerRate <= 0 {
		c.BreakerRate = 0.5
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 10
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// backend is one pool member: its URL, its breaker, and a window of recent
// success latencies that feeds the hedging trigger.
type backend struct {
	url string
	idx int // obs per-backend series index (clamped by obs)
	br  *breaker
	lat latWindow
}

// Pool is a distributed shard client. Construct with New; a Pool is safe
// for concurrent use by any number of solves.
type Pool struct {
	cfg      Config
	backends []*backend
	open     atomic.Int64 // breakers currently not closed
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a pool over the given peers and, if HealthInterval is set,
// starts the active health prober (stop it with Close).
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, stop: make(chan struct{})}
	bcfg := breakerConfig{
		disabled:   cfg.BreakerFailures < 0,
		failures:   cfg.BreakerFailures,
		window:     cfg.BreakerWindow,
		rate:       cfg.BreakerRate,
		minSamples: cfg.BreakerMinSamples,
		cooldown:   cfg.BreakerCooldown,
		probes:     cfg.BreakerProbes,
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Peers {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("dist: peer %q is not an http(s) base URL", raw)
		}
		base := strings.TrimRight(raw, "/")
		if seen[base] {
			return nil, fmt.Errorf("dist: duplicate peer %q", base)
		}
		seen[base] = true
		p.backends = append(p.backends, &backend{
			url: base,
			idx: len(p.backends),
			br:  newBreaker(bcfg, cfg.now, p.onTrip, p.onClose),
		})
	}
	if cfg.HealthInterval > 0 && len(p.backends) > 0 {
		p.wg.Add(1)
		go p.prober()
	}
	return p, nil
}

// Close stops the health prober. In-flight solves are unaffected.
func (p *Pool) Close() {
	close(p.stop)
	p.wg.Wait()
}

// Backends reports the pool size.
func (p *Pool) Backends() int { return len(p.backends) }

func (p *Pool) onTrip() {
	obs.DistBreakerTrips.Inc()
	obs.DistBreakerOpen.Set(p.open.Add(1))
}

func (p *Pool) onClose() {
	obs.DistBreakerOpen.Set(p.open.Add(-1))
}

// Distributor adapts the pool to core.Params.Distributor: it wraps the
// local shard solver with the remote scatter and exposes what each shard's
// envelope did — the route taken plus, for remotely solved shards, the
// backend-reported arm stats. With an empty pool it returns the local
// solver unchanged.
func (p *Pool) Distributor(shards int, local shard.Solver) (shard.Solver, func(int) shard.Remote) {
	if len(p.backends) == 0 {
		return local, nil
	}
	// Scatter gives each shard index to exactly one worker, so the
	// per-index writes are race-free without a lock; the accessor is
	// only called after the scatter completes.
	remotes := make([]shard.Remote, shards)
	solver := shard.Solver(func(ctx context.Context, index int, sub *model.Instance) (*model.Solution, error) {
		sol, rem, err := p.solveShard(ctx, index, sub, local)
		remotes[index] = rem
		return sol, err
	})
	return solver, func(i int) shard.Remote { return remotes[i] }
}

// solveShard runs one shard through the full envelope: ranked remote
// attempts with retry, hedging and breaker gating, then local fallback.
// The only errors it can return are the local solver's own.
func (p *Pool) solveShard(ctx context.Context, index int, sub *model.Instance, local shard.Solver) (*model.Solution, shard.Remote, error) {
	key := sapcache.KeyOf(sub)
	ranked := p.rank(key)
	rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(key[:8]))))
	var rem shard.Remote
	route := &rem.Route
	backoff := p.cfg.BackoffBase
	for attempt := 0; attempt < p.cfg.MaxAttempts && ctx.Err() == nil; attempt++ {
		primary, rest, skipped := pickPrimary(ranked, attempt)
		route.BreakerOpen = route.BreakerOpen || skipped
		if primary == nil {
			break // every breaker open: straight to local fallback
		}
		if attempt > 0 {
			route.Retries++
			obs.DistRetries.Inc()
			backoff = nextBackoff(rng, backoff, p.cfg.BackoffBase, p.cfg.BackoffCap)
			if !sleepCtx(ctx, backoff) {
				primary.br.forgive()
				break
			}
		}
		route.Attempts++
		out, hedged := p.race(ctx, sub, primary, rest)
		route.Hedged = route.Hedged || hedged
		if out.err == nil {
			route.Origin = shard.OriginRemote
			route.Backend = out.b.url
			route.HedgeWon = out.hedge
			route.RemoteDegraded = out.wr.Degraded
			rem.Stats = out.wr.Stats
			obs.DistRemoteSolves.Inc()
			return out.sol, rem, nil
		}
	}
	obs.DistFallbacks.Inc()
	route.Origin = shard.OriginFallback
	sol, err := local(ctx, index, sub)
	return sol, rem, err
}

// rpcOutcome is one backend's answer in a hedging race.
type rpcOutcome struct {
	sol   *model.Solution
	wr    *shard.WireResponse
	b     *backend
	hedge bool
	err   error
}

// race sends the shard to primary and, if the hedging trigger fires before
// primary answers, to the first breaker-admitted backend in rest. The first
// success wins; cancelling the shared context reels in the loser, whose
// breaker slot is forgiven rather than penalised.
func (p *Pool) race(ctx context.Context, sub *model.Instance, primary *backend, rest []*backend) (rpcOutcome, bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan rpcOutcome, 2)
	launch := func(b *backend, hedge bool) {
		go func() {
			sol, wr, err := p.rpc(ctx, b, sub)
			if err != nil && ctx.Err() != nil {
				// Lost the race or the caller gave up: not the
				// backend's fault.
				b.br.forgive()
			} else {
				b.br.done(err == nil)
			}
			ch <- rpcOutcome{sol: sol, wr: wr, b: b, hedge: hedge, err: err}
		}()
	}
	launch(primary, false)
	inFlight := 1
	var hedgeC <-chan time.Time
	if d := p.hedgeDelay(primary); d >= 0 && len(rest) > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	var firstErr error
	for inFlight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if hb := allowFirst(rest); hb != nil {
				hedged = true
				obs.DistHedges.Inc()
				launch(hb, true)
				inFlight++
			}
		case out := <-ch:
			inFlight--
			if out.err == nil {
				if out.hedge {
					obs.DistHedgeWins.Inc()
				}
				return out, hedged
			}
			if firstErr == nil {
				firstErr = out.err
			}
		}
	}
	return rpcOutcome{err: firstErr}, hedged
}

// hedgeDelay is the trigger for one shard: the configured floor, raised to
// the primary's recent p95 so a briefly slow backend is not hammered with
// hedges. Negative means hedging is off.
func (p *Pool) hedgeDelay(primary *backend) time.Duration {
	if p.cfg.HedgeAfter < 0 {
		return -1
	}
	d := p.cfg.HedgeAfter
	if p95 := primary.lat.p95(); p95 > d {
		d = p95
	}
	return d
}

// rpc performs one measured attempt against one backend.
func (p *Pool) rpc(ctx context.Context, b *backend, sub *model.Instance) (*model.Solution, *shard.WireResponse, error) {
	if p.cfg.PerTryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.PerTryTimeout)
		defer cancel()
	}
	obs.DistRPCs.Inc()
	start := p.cfg.now()
	sol, wr, err := p.doRPC(ctx, b, sub)
	elapsed := p.cfg.now().Sub(start)
	obs.DistRPCLatencyNs.Record(elapsed.Nanoseconds())
	obs.DistBackendLatency(b.idx).Record(elapsed.Nanoseconds())
	if err == nil {
		b.lat.record(elapsed)
	}
	return sol, wr, err
}

// doRPC is the wire exchange: POST the sub-instance to /v1/shard, decode
// the response, rebind it to the sub-instance and verify feasibility.
// Every failure mode maps to saperr.ErrUnavailable so the caller's retry
// logic has one signal. The faultinject sites model the transport faults
// the difftest matrix drives: dial failure, a slow response, a 5xx burst
// and response truncation.
func (p *Pool) doRPC(ctx context.Context, b *backend, sub *model.Instance) (*model.Solution, *shard.WireResponse, error) {
	if err := faultinject.FireErr(ctx, "dist/dial"); err != nil {
		return nil, nil, saperr.Unavailable("dial %s: %v", b.url, err)
	}
	var body bytes.Buffer
	if err := sub.WriteJSON(&body); err != nil {
		return nil, nil, saperr.Unavailable("encode shard for %s: %v", b.url, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/shard", &body)
	if err != nil {
		return nil, nil, saperr.Unavailable("build request for %s: %v", b.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, saperr.Unavailable("post %s: %v", b.url, err)
	}
	defer resp.Body.Close()
	faultinject.Fire(ctx, "dist/slow") // injected delay between headers and body
	if err := faultinject.FireErr(ctx, "dist/5xx"); err != nil {
		return nil, nil, saperr.Unavailable("backend %s: injected server error", b.url)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, nil, saperr.Unavailable("backend %s: status %d: %s",
			b.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponseBytes))
	if err != nil {
		return nil, nil, saperr.Unavailable("read %s response: %v", b.url, err)
	}
	if ferr := faultinject.FireErr(ctx, "dist/trunc"); ferr != nil {
		raw = raw[:len(raw)/2]
	}
	wr, err := shard.DecodeWireResponse(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	sol, err := wr.Solution(sub)
	if err != nil {
		return nil, nil, err
	}
	if err := model.ValidSAP(sub, sol); err != nil {
		return nil, nil, saperr.Unavailable("backend %s returned infeasible solution: %v", b.url, err)
	}
	return sol, wr, nil
}

// rank orders the pool for one shard key by rendezvous hashing: each
// backend scores sha256(key ‖ url) and higher scores rank first. Every
// client computes the same ranking, and removing a backend reroutes only
// the shards that ranked it first.
func (p *Pool) rank(key sapcache.Key) []*backend {
	type scored struct {
		b *backend
		s uint64
	}
	sc := make([]scored, len(p.backends))
	h := sha256.New()
	for i, b := range p.backends {
		h.Reset()
		h.Write(key[:])
		io.WriteString(h, b.url)
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		sc[i] = scored{b: b, s: binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].b.url < sc[j].b.url
	})
	ranked := make([]*backend, len(sc))
	for i, s := range sc {
		ranked[i] = s.b
	}
	return ranked
}

// pickPrimary claims the first breaker-admitted backend in ranked order,
// rotated by the attempt number so a retry moves on to the next-ranked
// backend instead of hammering the one that just failed. It returns the
// claimed backend plus the remaining backends in rotated order (hedge
// candidates). skipped reports that a breaker rejected at least one
// backend during the pick — surfaced as Route.BreakerOpen even when the
// shard still lands remotely.
func pickPrimary(ranked []*backend, attempt int) (primary *backend, rest []*backend, skipped bool) {
	n := len(ranked)
	for k := 0; k < n; k++ {
		i := (attempt + k) % n
		if !ranked[i].br.Allow() {
			skipped = true
			continue
		}
		rest := make([]*backend, 0, n-1)
		for j := 1; j < n; j++ {
			rest = append(rest, ranked[(i+j)%n])
		}
		return ranked[i], rest, skipped
	}
	return nil, nil, n > 0
}

// allowFirst claims the first breaker-admitted backend, for hedge launches.
func allowFirst(backends []*backend) *backend {
	for _, b := range backends {
		if b.br.Allow() {
			return b
		}
	}
	return nil
}

// nextBackoff steps the decorrelated-jitter schedule: uniform in
// [base, 3·prev], clamped to cap.
func nextBackoff(rng *rand.Rand, prev, base, cap time.Duration) time.Duration {
	hi := 3 * prev
	if hi < base {
		hi = base
	}
	d := base + time.Duration(rng.Int63n(int64(hi-base)+1))
	if d > cap {
		d = cap
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// prober actively drives tripped breakers back to closed: every interval it
// probes each not-closed backend's /healthz through the breaker's own
// admission, so recovery does not have to wait for live traffic to risk a
// half-open probe.
func (p *Pool) prober() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, b := range p.backends {
				if b.br.state() == stateClosed {
					continue
				}
				if !b.br.Allow() {
					continue
				}
				b.br.done(p.healthz(b) == nil)
			}
		}
	}
}

// healthz is one active probe.
func (p *Pool) healthz(b *backend) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// latWindow is a fixed ring of recent success latencies; p95 over it feeds
// the hedging trigger.
type latWindow struct {
	mu   sync.Mutex
	buf  [32]time.Duration
	n    int // filled entries
	next int // ring cursor
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// p95 returns the 95th-percentile recent latency, or 0 until at least 8
// samples exist (too little signal to raise the hedge trigger).
func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 8 {
		return 0
	}
	tmp := make([]time.Duration, w.n)
	copy(tmp, w.buf[:w.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(len(tmp)*95)/100]
}
