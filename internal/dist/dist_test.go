package dist

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"sapalloc/internal/core"
	"sapalloc/internal/faultinject"
	"sapalloc/internal/model"
	"sapalloc/internal/sapcache"
	"sapalloc/internal/serve"
	"sapalloc/internal/shard"
)

// The obs counters and faultinject plans these tests touch are
// process-global, so the suite cannot use t.Parallel within this file.

func distInstance(salt int64) *model.Instance {
	return &model.Instance{
		Capacity: []int64{9, 7, 9, 5},
		Tasks: []model.Task{
			{ID: 0, Start: 0, End: 2, Demand: 3, Weight: 10 + salt},
			{ID: 1, Start: 1, End: 4, Demand: 2, Weight: 7},
			{ID: 2, Start: 2, End: 3, Demand: 5, Weight: 4},
			{ID: 3, Start: 0, End: 1, Demand: 4, Weight: 6},
			{ID: 4, Start: 3, End: 4, Demand: 1, Weight: 9},
		},
	}
}

// localSolver is the in-process arm the distributed path must degrade to.
func localSolver(t *testing.T) shard.Solver {
	t.Helper()
	return func(ctx context.Context, _ int, sub *model.Instance) (*model.Solution, error) {
		res, err := core.SolveCtx(ctx, sub, core.Params{})
		if err != nil {
			return nil, err
		}
		return res.Solution, nil
	}
}

func mustLocal(t *testing.T, in *model.Instance) *model.Solution {
	t.Helper()
	res, err := core.SolveCtx(context.Background(), in, core.Params{})
	if err != nil {
		t.Fatalf("local solve: %v", err)
	}
	return res.Solution
}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	t.Cleanup(p.Close)
	return p
}

// fastCfg keeps retry/backoff timing test-sized.
func fastCfg(peers ...string) Config {
	return Config{
		Peers:       peers,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		HedgeAfter:  -1,
	}
}

func TestEmptyPoolReturnsLocalSolver(t *testing.T) {
	p := newPool(t, Config{})
	local := localSolver(t)
	solver, remoteOf := p.Distributor(3, local)
	if remoteOf != nil {
		t.Error("empty pool returned a remote accessor; want nil (all-local, no route diagnostics)")
	}
	in := distInstance(0)
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("solver: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("empty-pool solver is not the local solver")
	}
}

func TestNewRejectsBadPeers(t *testing.T) {
	for _, bad := range [][]string{
		{"not a url"},
		{"ftp://host"},
		{"http://a", "http://a/"},
	} {
		if p, err := New(Config{Peers: bad}); err == nil {
			p.Close()
			t.Errorf("New accepted peers %v", bad)
		}
	}
}

// TestRendezvousRanking pins the two properties routing relies on: the
// ranking is deterministic, and removing a backend reroutes only the keys
// that ranked it first.
func TestRendezvousRanking(t *testing.T) {
	p3 := newPool(t, fastCfg("http://a", "http://b", "http://c"))
	p2 := newPool(t, fastCfg("http://a", "http://c"))
	var moved, kept int
	for i := 0; i < 64; i++ {
		var key sapcache.Key
		key[0], key[1] = byte(i), byte(i>>3)
		r1 := p3.rank(key)
		r1again := p3.rank(key)
		for j := range r1 {
			if r1[j].url != r1again[j].url {
				t.Fatalf("ranking for key %d not stable: %v vs %v", i, r1[j].url, r1again[j].url)
			}
		}
		r2 := p2.rank(key)
		if r1[0].url == "http://b" {
			moved++
			continue
		}
		kept++
		if r2[0].url != r1[0].url {
			t.Errorf("key %d moved from %s to %s although its backend survived",
				i, r1[0].url, r2[0].url)
		}
	}
	if moved == 0 || kept == 0 {
		t.Errorf("degenerate key distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRemoteSolveMatchesLocal is the happy path: one healthy backend, and
// the distributed result is byte-identical to the in-process solve.
func TestRemoteSolveMatchesLocal(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	p := newPool(t, fastCfg(ts.URL))
	solver, remoteOf := p.Distributor(1, localSolver(t))
	in := distInstance(0)
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("distributed solve: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("remote solution differs from local solve")
	}
	route := remoteOf(0).Route
	want := shard.Route{Origin: shard.OriginRemote, Backend: ts.URL, Attempts: 1}
	if route != want {
		t.Errorf("route = %+v, want %+v", route, want)
	}
}

// TestRetryExhaustionFallsBack pins the bottom of the degradation ladder: a
// backend that only serves 500s burns MaxAttempts attempts (with backoff
// between them) and the shard lands on the local solver with a fallback
// route — never an error.
func TestRetryExhaustionFallsBack(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 2
	cfg.BreakerFailures = 100 // keep the breaker out of this test
	p := newPool(t, cfg)
	solver, remoteOf := p.Distributor(1, localSolver(t))
	in := distInstance(1)
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("solve with dead backend: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("fallback solution differs from local solve")
	}
	route := remoteOf(0).Route
	if route.Origin != shard.OriginFallback || route.Attempts != 2 || route.Retries != 1 {
		t.Errorf("route = %+v, want fallback after 2 attempts / 1 retry", route)
	}
	if hits.Load() != 2 {
		t.Errorf("backend saw %d requests, want 2", hits.Load())
	}
}

// TestBreakerShortCircuitsAndRecovers drives the breaker end to end through
// real traffic: failures trip it, tripped shards skip straight to local
// fallback without touching the backend, and once the backend heals and the
// cooldown elapses a half-open probe closes it again.
func TestBreakerShortCircuitsAndRecovers(t *testing.T) {
	clock := newFakeClock()
	var healthy atomic.Bool
	var hits atomic.Int64
	real := serve.New(serve.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 1
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = 5 * time.Second
	cfg.BreakerProbes = 1
	cfg.now = clock.now
	p := newPool(t, cfg)
	solver, remoteOf := p.Distributor(1, localSolver(t))
	in := distInstance(2)
	want := mustLocal(t, in)
	ctx := context.Background()

	// Two failing solves trip the breaker (both still fall back cleanly).
	for i := 0; i < 2; i++ {
		sol, err := solver(ctx, 0, in)
		if err != nil || !reflect.DeepEqual(sol.Items, want.Items) {
			t.Fatalf("solve %d during outage: err=%v", i, err)
		}
		if r := remoteOf(0).Route; r.Origin != shard.OriginFallback {
			t.Fatalf("solve %d route = %+v, want fallback", i, r)
		}
	}
	if got := p.backends[0].br.state(); got != stateOpen {
		t.Fatalf("breaker state after 2 failures = %v, want open", got)
	}

	// Open breaker: the backend is not even contacted.
	before := hits.Load()
	sol, err := solver(ctx, 0, in)
	if err != nil || !reflect.DeepEqual(sol.Items, want.Items) {
		t.Fatalf("solve with open breaker: err=%v", err)
	}
	if r := remoteOf(0).Route; r.Origin != shard.OriginFallback || !r.BreakerOpen || r.Attempts != 0 {
		t.Errorf("open-breaker route = %+v, want zero-attempt fallback with BreakerOpen", r)
	}
	if hits.Load() != before {
		t.Errorf("open breaker still sent %d requests", hits.Load()-before)
	}

	// Backend heals, cooldown elapses: the next solve is the half-open
	// probe, succeeds, and closes the breaker.
	healthy.Store(true)
	clock.advance(5 * time.Second)
	sol, err = solver(ctx, 0, in)
	if err != nil || !reflect.DeepEqual(sol.Items, want.Items) {
		t.Fatalf("probe solve: err=%v", err)
	}
	if r := remoteOf(0).Route; r.Origin != shard.OriginRemote {
		t.Errorf("probe route = %+v, want remote", r)
	}
	if got := p.backends[0].br.state(); got != stateClosed {
		t.Errorf("breaker state after successful probe = %v, want closed", got)
	}
}

// modeHandler is a backend that either serves for real or blocks until the
// client hangs up, reporting the observed cancellation.
type modeHandler struct {
	slow      atomic.Bool
	real      http.Handler
	cancelled chan struct{}
}

func (h *modeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.slow.Load() {
		// Drain the body first: the HTTP server only watches for the
		// client hanging up once the request has been consumed.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		select {
		case h.cancelled <- struct{}{}:
		default:
		}
		return
	}
	h.real.ServeHTTP(w, r)
}

// TestHedgeWinnerCancelsLoser wedges the rendezvous-primary backend and
// pins the hedging path: after HedgeAfter the next-ranked backend gets the
// hedge, its response wins, and the stuck primary request is cancelled.
func TestHedgeWinnerCancelsLoser(t *testing.T) {
	real := serve.New(serve.Config{}).Handler()
	h1 := &modeHandler{real: real, cancelled: make(chan struct{}, 1)}
	h2 := &modeHandler{real: real, cancelled: make(chan struct{}, 1)}
	ts1, ts2 := httptest.NewServer(h1), httptest.NewServer(h2)
	defer ts1.Close()
	defer ts2.Close()
	byURL := map[string]*modeHandler{ts1.URL: h1, ts2.URL: h2}

	cfg := fastCfg(ts1.URL, ts2.URL)
	cfg.HedgeAfter = 5 * time.Millisecond
	cfg.PerTryTimeout = 10 * time.Second
	p := newPool(t, cfg)

	in := distInstance(3)
	ranked := p.rank(sapcache.KeyOf(in))
	byURL[ranked[0].url].slow.Store(true) // wedge whichever backend ranks first

	solver, remoteOf := p.Distributor(1, localSolver(t))
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("hedged solve: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("hedged solution differs from local solve")
	}
	route := remoteOf(0).Route
	if !route.Hedged || !route.HedgeWon || route.Backend != ranked[1].url {
		t.Errorf("route = %+v, want hedge win on %s", route, ranked[1].url)
	}
	if route.Origin != shard.OriginRemote {
		t.Errorf("route origin = %v, want remote", route.Origin)
	}
	select {
	case <-byURL[ranked[0].url].cancelled:
	case <-time.After(5 * time.Second):
		t.Error("stuck primary request was never cancelled after the hedge won")
	}
	// Losing a race must not penalise the slow backend's breaker.
	if got := byURL[ranked[0].url]; got != nil {
		if st := ranked[0].br.state(); st != stateClosed {
			t.Errorf("hedge loser's breaker state = %v, want closed", st)
		}
	}
}

// TestFaultSiteDial arms the transport dial fault: every attempt fails
// before any bytes move, and the shard falls back locally.
func TestFaultSiteDial(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	plan := faultinject.NewPlan(faultinject.Injection{Site: "dist/dial", Kind: faultinject.KindError})
	deactivate := faultinject.Activate(plan)
	defer deactivate()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 2
	cfg.BreakerFailures = 100
	p := newPool(t, cfg)
	solver, remoteOf := p.Distributor(1, localSolver(t))
	in := distInstance(4)
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("solve under dial fault: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("dial-fault solution differs from local solve")
	}
	if r := remoteOf(0).Route; r.Origin != shard.OriginFallback || r.Attempts != 2 {
		t.Errorf("route = %+v, want fallback after 2 dial failures", r)
	}
	if plan.Hits("dist/dial") != 2 {
		t.Errorf("dial site hit %d times, want 2", plan.Hits("dist/dial"))
	}
}

// TestFaultSiteTruncationRetries arms a one-shot response truncation: the
// first attempt decodes garbage and is retried, the second succeeds — the
// codec's corruption detection feeds the retry loop, not the caller.
func TestFaultSiteTruncationRetries(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	plan := faultinject.NewPlan(faultinject.Injection{Site: "dist/trunc", Kind: faultinject.KindError, Once: true})
	deactivate := faultinject.Activate(plan)
	defer deactivate()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 3
	p := newPool(t, cfg)
	solver, remoteOf := p.Distributor(1, localSolver(t))
	in := distInstance(5)
	sol, err := solver(context.Background(), 0, in)
	if err != nil {
		t.Fatalf("solve under truncation fault: %v", err)
	}
	if !reflect.DeepEqual(sol.Items, mustLocal(t, in).Items) {
		t.Error("post-truncation solution differs from local solve")
	}
	route := remoteOf(0).Route
	if route.Origin != shard.OriginRemote || route.Attempts != 2 || route.Retries != 1 {
		t.Errorf("route = %+v, want remote on attempt 2 after one truncated response", route)
	}
}

// TestProberClosesBreakerWithoutTraffic tripped breakers recover through
// the active /healthz prober alone.
func TestProberClosesBreakerWithoutTraffic(t *testing.T) {
	var healthy atomic.Bool
	real := serve.New(serve.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 1
	cfg.BreakerFailures = 1
	cfg.BreakerCooldown = time.Millisecond
	cfg.BreakerProbes = 1
	cfg.HealthInterval = 5 * time.Millisecond
	p := newPool(t, cfg)
	solver, _ := p.Distributor(1, localSolver(t))
	if _, err := solver(context.Background(), 0, distInstance(6)); err != nil {
		t.Fatalf("tripping solve: %v", err)
	}
	if got := p.backends[0].br.state(); got != stateOpen {
		t.Fatalf("breaker state after failure = %v, want open", got)
	}
	healthy.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for p.backends[0].br.state() != stateClosed {
		if time.Now().After(deadline) {
			t.Fatal("prober never closed the breaker")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
