package dist

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreakerConfig() breakerConfig {
	return breakerConfig{
		failures:   3,
		window:     10 * time.Second,
		rate:       0.5,
		minSamples: 10,
		cooldown:   5 * time.Second,
		probes:     2,
	}
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// circle on a fake clock: consecutive failures trip it, the cooldown gates
// half-open, exactly one probe flies at a time, and the configured run of
// probe successes closes it again.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	trips, closes := 0, 0
	b := newBreaker(testBreakerConfig(), clock.now, func() { trips++ }, func() { closes++ })

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.done(false)
	}
	if got := b.state(); got != stateOpen {
		t.Fatalf("after 3 consecutive failures state = %v, want open", got)
	}
	if trips != 1 {
		t.Fatalf("onTrip fired %d times, want 1", trips)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	clock.advance(5 * time.Second)
	if got := b.state(); got != stateHalfOpen {
		t.Fatalf("after cooldown state = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.done(true)
	if got := b.state(); got != stateHalfOpen {
		t.Fatalf("after 1/2 probe successes state = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the second probe")
	}
	b.done(true)
	if got := b.state(); got != stateClosed {
		t.Fatalf("after 2/2 probe successes state = %v, want closed", got)
	}
	if closes != 1 {
		t.Fatalf("onClose fired %d times, want 1", closes)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker rejected a request")
	}
	b.done(true)
}

// TestBreakerHalfOpenFailureReopens pins that a failed probe restarts the
// cooldown without re-firing onTrip (the breaker never closed in between).
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := newFakeClock()
	trips := 0
	b := newBreaker(testBreakerConfig(), clock.now, func() { trips++ }, nil)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.done(false)
	}
	clock.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.done(false)
	if got := b.state(); got != stateOpen {
		t.Fatalf("after failed probe state = %v, want open", got)
	}
	if trips != 1 {
		t.Fatalf("onTrip fired %d times across re-open, want 1", trips)
	}
	clock.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request before the fresh cooldown elapsed")
	}
	clock.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker rejected the probe after the fresh cooldown")
	}
	b.forgive()
}

// TestBreakerErrorRateTrips drives a failure pattern that never reaches the
// consecutive-failure threshold but exceeds the windowed error rate.
func TestBreakerErrorRateTrips(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(testBreakerConfig(), clock.now, nil, nil)
	// Alternate fail/ok: consecutive failures never exceed 1, but once the
	// window holds minSamples results at a ≥50% failure rate, the next
	// failure trips the breaker (the detector runs on failing samples).
	for i := 0; i < 11; i++ {
		if !b.Allow() {
			t.Fatalf("breaker rejected request %d before the rate tripped", i)
		}
		b.done(i%2 == 1)
		clock.advance(100 * time.Millisecond)
	}
	if got := b.state(); got != stateOpen {
		t.Fatalf("state after 6/11 failures in window = %v, want open", got)
	}
}

// TestBreakerWindowExpiry pins that stale samples age out: failures spread
// wider than the window never accumulate into a rate trip.
func TestBreakerWindowExpiry(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(testBreakerConfig(), clock.now, nil, nil)
	for i := 0; i < 30; i++ {
		if !b.Allow() {
			t.Fatalf("breaker tripped at sample %d despite aged-out window", i)
		}
		b.done(i%2 == 1)
		clock.advance(11 * time.Second) // every sample expires before the next
	}
	if got := b.state(); got != stateClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerForgive pins that forgiven results neither trip a closed
// breaker nor leak the half-open probe slot.
func TestBreakerForgive(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(testBreakerConfig(), clock.now, nil, nil)
	for i := 0; i < 100; i++ {
		b.Allow()
		b.forgive()
	}
	if got := b.state(); got != stateClosed {
		t.Fatalf("forgiven results moved state to %v", got)
	}
	for i := 0; i < 3; i++ {
		b.Allow()
		b.done(false)
	}
	clock.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.forgive()
	if !b.Allow() {
		t.Fatal("forgive did not release the half-open probe slot")
	}
	b.done(true)
}

// TestBreakerDisabled pins that a disabled breaker is a pure pass-through.
func TestBreakerDisabled(t *testing.T) {
	clock := newFakeClock()
	cfg := testBreakerConfig()
	cfg.disabled = true
	b := newBreaker(cfg, clock.now, func() { t.Error("disabled breaker tripped") }, nil)
	for i := 0; i < 50; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker rejected a request")
		}
		b.done(false)
	}
	if got := b.state(); got != stateClosed {
		t.Fatalf("disabled breaker state = %v, want closed", got)
	}
}
