package dist

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine. Closed
// passes traffic and watches for failure; Open rejects traffic until a
// cooldown elapses; HalfOpen admits one probe at a time and closes again
// only after a configured run of probe successes.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breakerConfig is the resolved (post-default) breaker tuning.
type breakerConfig struct {
	disabled   bool          // pass everything, record nothing
	failures   int           // consecutive failures that trip the breaker
	window     time.Duration // error-rate observation window
	rate       float64       // error rate within window that trips
	minSamples int           // window samples required before rate applies
	cooldown   time.Duration // open → half-open delay
	probes     int           // half-open successes required to close
}

// sample is one request outcome inside the error-rate window.
type sample struct {
	at time.Time
	ok bool
}

// breaker guards one backend. It is fed passively by RPC results and
// actively by the health prober; both paths call Allow before a request and
// done (or forgive) after. The clock is injected so the open → half-open →
// closed walk is testable without sleeping.
type breaker struct {
	cfg     breakerConfig
	now     func() time.Time
	onTrip  func() // closed → open edge only
	onClose func() // half-open → closed edge only

	mu          sync.Mutex
	st          breakerState
	consecFails int
	samples     []sample
	openedAt    time.Time
	probeBusy   bool // a half-open probe is in flight
	probeOKs    int
}

func newBreaker(cfg breakerConfig, now func() time.Time, onTrip, onClose func()) *breaker {
	return &breaker{cfg: cfg, now: now, onTrip: onTrip, onClose: onClose}
}

// state reports the current state, applying the cooldown transition first so
// callers never observe a stale Open past its cooldown.
func (b *breaker) state() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.st
}

// Allow reports whether a request may be sent. In half-open state a true
// return claims the single probe slot; the caller MUST balance it with done
// or forgive, or the breaker wedges half-open.
func (b *breaker) Allow() bool {
	if b.cfg.disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.st {
	case stateClosed:
		return true
	case stateHalfOpen:
		if b.probeBusy {
			return false
		}
		b.probeBusy = true
		return true
	}
	return false
}

// maybeHalfOpen moves Open to HalfOpen once the cooldown has elapsed.
// Callers hold b.mu.
func (b *breaker) maybeHalfOpen() {
	if b.st == stateOpen && b.now().Sub(b.openedAt) >= b.cfg.cooldown {
		b.st = stateHalfOpen
		b.probeBusy = false
		b.probeOKs = 0
	}
}

// done records the outcome of a request admitted by Allow.
func (b *breaker) done(ok bool) {
	if b.cfg.disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case stateClosed:
		b.record(ok)
	case stateHalfOpen:
		b.probeBusy = false
		if !ok {
			// The probe failed: the backend is still sick, restart the
			// cooldown. No onTrip — the breaker never closed.
			b.st = stateOpen
			b.openedAt = b.now()
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.probes {
			b.st = stateClosed
			b.consecFails = 0
			b.samples = b.samples[:0]
			if b.onClose != nil {
				b.onClose()
			}
		}
	case stateOpen:
		// A result from a request admitted before the trip; stale, ignore.
	}
}

// forgive releases a slot claimed by Allow without recording an outcome.
// Used for requests that lost a hedging race or were cancelled by the
// caller: the backend did nothing wrong, so it must not be penalised, but a
// half-open probe slot must still be returned.
func (b *breaker) forgive() {
	if b.cfg.disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st == stateHalfOpen {
		b.probeBusy = false
	}
}

// record folds one closed-state outcome into both trip detectors: the
// consecutive-failure counter and the windowed error rate. Callers hold
// b.mu.
func (b *breaker) record(ok bool) {
	now := b.now()
	b.samples = append(b.samples, sample{at: now, ok: ok})
	cut := 0
	for cut < len(b.samples) && now.Sub(b.samples[cut].at) > b.cfg.window {
		cut++
	}
	if cut > 0 {
		b.samples = append(b.samples[:0], b.samples[cut:]...)
	}
	if ok {
		b.consecFails = 0
		return
	}
	b.consecFails++
	trip := b.consecFails >= b.cfg.failures
	if !trip && len(b.samples) >= b.cfg.minSamples {
		fails := 0
		for _, s := range b.samples {
			if !s.ok {
				fails++
			}
		}
		trip = float64(fails) >= b.cfg.rate*float64(len(b.samples))
	}
	if trip {
		b.st = stateOpen
		b.openedAt = now
		b.consecFails = 0
		b.samples = b.samples[:0]
		if b.onTrip != nil {
			b.onTrip()
		}
	}
}
