// Command sapstore inspects and maintains durable solve store directories
// (internal/store, the tamper-evident log behind sapserved -store-dir).
//
// Usage:
//
//	sapstore verify  -dir /var/lib/sapalloc/store
//	sapstore stats   -dir /var/lib/sapalloc/store
//	sapstore compact -dir /var/lib/sapalloc/store
//
// Verbs:
//
//	verify   replay the segment log end to end, re-checking every record
//	         hash, batch Merkle root, and chain link; exit 1 on the first
//	         integrity error (a torn tail found at open is reported but is
//	         recoverable, so it alone does not fail verification)
//	stats    print the store's shape: records, batches, segments, bytes,
//	         chain head, and any recovery performed at open
//	compact  rewrite the log to exactly the live records under a fresh
//	         chain (old provenance is re-rooted; run offline — the swap is
//	         not crash-atomic)
//
// All verbs open the store read-through-recovery: a torn tail left by a
// crashed writer is truncated exactly as sapserved would on restart.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sapalloc/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	verb := os.Args[1]
	switch verb {
	case "verify", "stats", "compact":
	default:
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet("sapstore "+verb, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	_ = fs.Parse(os.Args[2:])
	if *dir == "" {
		fatalf("-dir is required")
	}
	if err := run(verb, *dir, os.Stdout, os.Stderr); err != nil {
		fatalf("%v", err)
	}
}

// run executes one verb against the store directory, writing reports to
// stdout and recovery notices to stderr. Factored from main for tests.
func run(verb, dir string, stdout, stderr io.Writer) error {
	f, err := store.OpenFile(dir, store.FileConfig{FlushInterval: -1})
	if err != nil {
		return fmt.Errorf("open %s: %w", dir, err)
	}
	defer f.Close()

	st := f.Stats()
	if st.RecoveryErr != nil {
		fmt.Fprintf(stderr, "sapstore: recovered at open: %v\n", st.RecoveryErr)
	}

	switch verb {
	case "verify":
		if err := f.Verify(); err != nil {
			return fmt.Errorf("verify %s: %w", dir, err)
		}
		fmt.Fprintf(stdout, "ok: %d records in %d batches verify; head %s\n",
			st.Records, st.Batches, st.Head)
	case "stats":
		printStats(stdout, st)
	case "compact":
		before := st.LogBytes
		if err := f.Compact(); err != nil {
			return fmt.Errorf("compact %s: %w", dir, err)
		}
		after := f.Stats()
		fmt.Fprintf(stdout, "compacted: %d -> %d bytes (%d records, %d batches); new head %s\n",
			before, after.LogBytes, after.Records, after.Batches, after.Head)
	}
	return nil
}

func printStats(w io.Writer, st store.Stats) {
	fmt.Fprintf(w, "records:   %d\n", st.Records)
	fmt.Fprintf(w, "batches:   %d\n", st.Batches)
	fmt.Fprintf(w, "segments:  %d\n", st.Segments)
	fmt.Fprintf(w, "log bytes: %d\n", st.LogBytes)
	fmt.Fprintf(w, "next seq:  %d\n", st.NextSeq)
	fmt.Fprintf(w, "head:      %s\n", st.Head)
	if st.TailTruncated {
		fmt.Fprintf(w, "recovered: torn tail truncated (%d bytes dropped): %v\n",
			st.DroppedBytes, st.RecoveryErr)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sapstore <verify|stats|compact> -dir <store-dir>")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapstore: "+format+"\n", args...)
	os.Exit(1)
}
