package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapalloc/internal/store"
)

// populate writes n keys and closes the store, leaving a flushed log.
func populate(t *testing.T, dir string, n int) {
	t.Helper()
	f, err := store.OpenFile(dir, store.FileConfig{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := store.Key(sha256.Sum256([]byte(fmt.Sprintf("k%d", i))))
		if err := f.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyAndStats(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 5)

	var out, errw bytes.Buffer
	if err := run("verify", dir, &out, &errw); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "ok: 5 records in 1 batches") {
		t.Fatalf("verify output: %q", out.String())
	}

	out.Reset()
	if err := run("stats", dir, &out, &errw); err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"records:   5", "batches:   1", "segments:  1", "head:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stats output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunCompact(t *testing.T) {
	dir := t.TempDir()
	// Two generations of the same keys: half the log is garbage.
	populate(t, dir, 8)
	populate(t, dir, 8)

	var out, errw bytes.Buffer
	if err := run("compact", dir, &out, &errw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !strings.Contains(out.String(), "compacted:") {
		t.Fatalf("compact output: %q", out.String())
	}
	out.Reset()
	if err := run("verify", dir, &out, &errw); err != nil {
		t.Fatalf("verify after compact: %v", err)
	}
	if !strings.Contains(out.String(), "ok: 8 records") {
		t.Fatalf("post-compact verify output: %q", out.String())
	}
}

func TestRunVerifyFailsOnTampering(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 3)
	// Flip a byte mid-log: open itself must refuse (pre-tail corruption).
	path := filepath.Join(dir, "seg-00000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if err := run("verify", dir, &out, &errw); err == nil {
		t.Fatal("verify over tampered log succeeded")
	}
}

func TestRunReportsTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 3)
	// Append a truncated batch: recoverable, reported on stderr.
	path := filepath.Join(dir, "seg-00000001.log")
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte("SAPB\x00\x00")); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	var out, errw bytes.Buffer
	if err := run("verify", dir, &out, &errw); err != nil {
		t.Fatalf("verify after torn tail: %v", err)
	}
	if !strings.Contains(errw.String(), "recovered at open") {
		t.Fatalf("stderr lacks recovery notice: %q", errw.String())
	}
}
