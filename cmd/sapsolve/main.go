// Command sapsolve reads a SAP instance (JSON, as written by sapgen) from a
// file or stdin and solves it with the selected algorithm, printing the
// schedule, its weight, and optional diagnostics.
//
// Usage:
//
//	sapgen -family random | sapsolve -algo combined
//	sapsolve -algo exact -in inst.json -viz
//	sapsolve -algo ring -in ring.json
//
// Algorithms: combined (Theorem 4, default) | small (Theorem 1) |
// medium (Theorem 2) | large (Theorem 3) | exact (branch & bound) |
// ring (Theorem 5; requires a ring instance) | stretch (the conclusion's
// min-stretch DSA extension: packs ALL tasks within ρ·c for minimal ρ) |
// ufpp (the Bonsma-style combined UFPP pipeline — no contiguity).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sapalloc/internal/core"
	"sapalloc/internal/exact"
	"sapalloc/internal/largesap"
	"sapalloc/internal/lp"
	"sapalloc/internal/mediumsap"
	"sapalloc/internal/model"
	"sapalloc/internal/obscli"
	"sapalloc/internal/ringsap"
	"sapalloc/internal/saperr"
	"sapalloc/internal/shard"
	"sapalloc/internal/smallsap"
	"sapalloc/internal/stretch"
	"sapalloc/internal/ufppfull"
	"sapalloc/internal/viz"
	"sapalloc/internal/window"
)

func main() {
	var (
		algo    = flag.String("algo", "combined", "algorithm: combined | small | medium | large | exact | ring | stretch | ufpp | window")
		inPath  = flag.String("in", "-", "input instance path ('-' for stdin)")
		eps     = flag.Float64("eps", 0.5, "ε for the approximation guarantees")
		showViz = flag.Bool("viz", false, "render the schedule as ASCII art")
		outJSON = flag.Bool("json", false, "emit the solution as JSON instead of text")
		improve = flag.Bool("improve", false, "post-optimise the schedule (gravity + greedy insertion)")
		diag    = flag.Bool("diag", false, "print per-arm and per-class diagnostics (combined algorithm only)")
		workers = flag.Int("workers", 0, "goroutine bound for the parallel solvers (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		shards  = flag.Bool("shards", true, "decompose at zero-load cut edges and solve the shards in parallel (combined algorithm only; falls through when no cut exists)")
		timeout = flag.Duration("timeout", 0, "wall-clock budget for the solve (0 = none); on expiry the best solution among completed arms is returned, or a typed error and exit 1 when nothing completed")
	)
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()
	stopObs, err := obsFlags.Start("sapsolve")
	if err != nil {
		fatalf("%v", err)
	}
	defer stopObs()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r, err := openInput(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer r.Close()

	if *algo == "ring" {
		solveRing(ctx, r, *eps, *workers, *outJSON)
		return
	}

	if *algo == "window" {
		win, err := window.ReadJSON(r)
		if err != nil {
			fatalf("%v", err)
		}
		var sol *window.Solution
		label := "windowed exact"
		if len(win.Tasks) <= window.MaxTasks {
			sol, err = window.SolveExact(win, window.Options{})
			if err != nil && !errors.Is(err, window.ErrBudget) {
				fatalf("%v", err)
			}
		} else {
			sol = window.Greedy(win)
			label = "windowed greedy"
		}
		if err := window.Valid(win, sol); err != nil {
			fatalf("internal error: infeasible windowed solution: %v", err)
		}
		fmt.Printf("algorithm: %s\n", label)
		fmt.Printf("scheduled %d/%d tasks, weight %d\n", sol.Len(), len(win.Tasks), sol.Weight())
		for _, p := range sol.Items {
			fmt.Printf("  task %d  days [%d,%d)  height %d  weight %d\n",
				p.Task.ID, p.Start, p.End(), p.Height, p.Task.Weight)
		}
		return
	}

	in, err := model.ReadInstanceJSON(r)
	if err != nil {
		fatalf("%v", err)
	}

	if *algo == "ufpp" {
		res, err := ufppfull.SolveCtx(ctx, in, ufppfull.Params{Eps: *eps, Workers: *workers})
		if err != nil {
			fatalf("%v", err)
		}
		if err := model.ValidUFPP(in, res.Tasks); err != nil {
			fatalf("internal error: infeasible UFPP solution: %v", err)
		}
		fmt.Printf("algorithm: combined UFPP (Bonsma-style), winner: %s [small=%d medium=%d large=%d]\n",
			res.Winner, res.SmallWeight, res.MediumWeight, res.LargeWeight)
		fmt.Printf("selected %d/%d tasks, weight %d/%d (no heights — UFPP drops the contiguity constraint)\n",
			len(res.Tasks), len(in.Tasks), model.WeightOf(res.Tasks), in.TotalWeight())
		return
	}

	if *algo == "stretch" {
		res, err := stretch.MinStretch(in)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("algorithm: min-stretch DSA (conclusion's extension)\n")
		fmt.Printf("stretch ρ = %.4f (certified lower bound %.4f); all %d tasks packed\n",
			res.Rho(), res.LowerBoundRho(), res.Solution.Len())
		if *outJSON {
			if err := res.Solution.WriteJSON(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		}
		return
	}

	var sol *model.Solution
	var label string
	switch *algo {
	case "combined":
		res, err := core.SolveCtx(ctx, in, core.Params{
			Eps: *eps, Workers: *workers, Deadline: *timeout,
			Shard: shard.Options{Disable: !*shards},
		})
		if err != nil {
			fatalf("%v", err)
		}
		sol = res.Solution
		label = fmt.Sprintf("combined (9+ε), winner: %s [small=%d medium=%d large=%d]",
			res.Winner, res.SmallWeight, res.MediumWeight, res.LargeWeight)
		if res.Report != nil && res.Report.Degraded {
			label += " [degraded — see report]"
		}
		if obsFlags.Metrics {
			// The LP optimum upper-bounds OPT_SAP (the paper's Theorem 1
			// accounting), so achieved/LP is a certified lower bound on the
			// realised approximation quality of this run.
			lpBound := 0.0
			if _, lpOpt, lpErr := lp.UFPPFractional(in); lpErr == nil {
				lpBound = lpOpt
			}
			obscli.PrintArmBreakdown(os.Stderr, res.Winner.String(), sol.Weight(), lpBound)
		}
		if *diag {
			fmt.Printf("partition: %d small / %d medium / %d large tasks\n",
				res.NumSmall, res.NumMedium, res.NumLarge)
			if res.Report != nil {
				fmt.Printf("report: %s\n", res.Report)
			}
			if res.Shards != nil {
				fmt.Printf("shards: %s\n", res.Shards)
			}
			if res.SmallDetail != nil {
				for _, c := range res.SmallDetail.Classes {
					fmt.Printf("  strip class t=%d: %d tasks, UFPP weight %d, LP bound %.1f, retained %d\n",
						c.T, c.Tasks, c.UFPPWeight, c.LPBound, c.RetainedWeight)
				}
			}
			if res.MediumDetail != nil {
				ks := make([]int, 0, len(res.MediumDetail.Classes))
				for k := range res.MediumDetail.Classes {
					ks = append(ks, k)
				}
				sort.Ints(ks)
				for _, k := range ks {
					fmt.Printf("  medium class k=%d: elevated weight %d\n", k, res.MediumDetail.Classes[k])
				}
				fmt.Printf("  medium residue r*=%d (ℓ=%d, q=%d)\n",
					res.MediumDetail.Residue, res.MediumDetail.Ell, res.MediumDetail.Q)
			}
		}
	case "small":
		res, err := smallsap.SolveCtx(ctx, in, smallsap.Params{Workers: *workers})
		if err != nil {
			fatalf("%v", err)
		}
		sol = res.Solution
		label = fmt.Sprintf("strip-pack (4+ε), LP bound total %.1f", res.LPBoundTotal)
	case "medium":
		res, err := mediumsap.SolveCtx(ctx, in, mediumsap.Params{Eps: *eps, Workers: *workers})
		if err != nil {
			fatalf("%v", err)
		}
		sol = res.Solution
		label = fmt.Sprintf("almost-uniform (2+ε), residue r*=%d, ℓ=%d", res.Residue, res.Ell)
	case "large":
		s, err := largesap.SolveCtx(ctx, in, largesap.Options{})
		if err != nil {
			fatalf("%v", err)
		}
		sol = s
		label = "rectangle packing (2k−1)"
	case "exact":
		s, err := exact.SolveSAPCtx(ctx, in, exact.Options{})
		if err != nil && !errors.Is(err, exact.ErrBudget) && !(saperr.IsCancelled(err) && s != nil) {
			fatalf("%v", err)
		}
		sol = s
		label = "exact branch & bound"
		if errors.Is(err, exact.ErrBudget) {
			label += " (budget exhausted — incumbent shown)"
		} else if saperr.IsCancelled(err) {
			label += " (timeout — incumbent shown)"
		}
	default:
		fatalf("unknown algorithm %q", *algo)
	}

	if *improve {
		before := sol.Weight()
		sol = core.Improve(in, sol)
		label += fmt.Sprintf("; improved %d → %d", before, sol.Weight())
	}
	if err := model.ValidSAP(in, sol); err != nil {
		fatalf("internal error: produced infeasible solution: %v", err)
	}
	if *outJSON {
		if err := sol.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("algorithm: %s\n", label)
	fmt.Printf("%s\n", viz.Summary(in, sol))
	fmt.Print(viz.Legend(in, sol))
	if *showViz {
		fmt.Print(viz.RenderSolution(in, sol, viz.Options{}))
	}
}

func solveRing(ctx context.Context, r io.Reader, eps float64, workers int, outJSON bool) {
	ring, err := model.ReadRingJSON(r)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := ringsap.SolveCtx(ctx, ring, ringsap.Params{Eps: eps, Workers: workers})
	if err != nil {
		fatalf("%v", err)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "sapsolve: warning: an arm was cancelled or failed; the (10+ε) bound does not cover this run\n")
	}
	if err := model.ValidRingSAP(ring, res.Solution); err != nil {
		fatalf("internal error: infeasible ring solution: %v", err)
	}
	if outJSON {
		fmt.Printf("{\"weight\": %d, \"winner\": %q, \"cut_edge\": %d}\n",
			res.Solution.Weight(), res.Winner.String(), res.CutEdge)
		return
	}
	fmt.Printf("algorithm: ring (10+ε), winner: %s, cut edge: %d\n", res.Winner, res.CutEdge)
	fmt.Printf("scheduled %d/%d tasks, weight %d\n", res.Solution.Len(), len(ring.Tasks), res.Solution.Weight())
	for _, p := range res.Solution.Items {
		fmt.Printf("  task %d  %s  height %d  weight %d\n", p.Task.ID, p.Orientation, p.Height, p.Task.Weight)
	}
}

func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapsolve: "+format+"\n", args...)
	os.Exit(1)
}
