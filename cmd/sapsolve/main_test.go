package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenInput(t *testing.T) {
	r, err := openInput("-")
	if err != nil || r == nil {
		t.Fatalf("stdin: %v", err)
	}
	r.Close()
	path := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(path, []byte("{}"), 0o600); err != nil {
		t.Fatal(err)
	}
	f, err := openInput(path)
	if err != nil {
		t.Fatalf("file: %v", err)
	}
	f.Close()
	if _, err := openInput(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
}
