package main

import "testing"

func TestFlagSummary(t *testing.T) {
	if got := flagSummary(false, 0); got != "" {
		t.Errorf("default summary = %q", got)
	}
	if got := flagSummary(true, 0); got != " `-quick`" {
		t.Errorf("quick summary = %q", got)
	}
	if got := flagSummary(true, 7); got != " `-quick -seed 7`" {
		t.Errorf("quick+seed summary = %q", got)
	}
}
