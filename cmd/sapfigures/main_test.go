package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderProducesAllFigures(t *testing.T) {
	var buf bytes.Buffer
	render(&buf)
	out := buf.String()
	for _, want := range []string{
		"## Figure 1", "Fig 1a", "Fig 1b",
		"## Figure 2", "## Figure 4", "## Figure 5", "## Figures 7 and 8",
		"SAP OPT = 1 < 2", // Fig 1a's gap
		"5-cycle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}
