// Command sapgen generates SAP workload instances in the library's JSON
// interchange format.
//
// Usage:
//
//	sapgen -family random -seed 1 -edges 16 -tasks 32 -class mixed > inst.json
//	sapgen -family memtrace -seed 2 > trace.json
//	sapgen -family fig8 > fig8.json
//	sapgen -family ring -seed 3 -edges 8 -tasks 12 > ring.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/window"
)

func main() {
	var (
		family  = flag.String("family", "random", "workload family: random | uniform | memtrace | banner | spectrum | knapsack | nba | staircase | archipelago | ring | fig1a | fig1b | fig2a | fig2b | fig8 | gapchain | window")
		islands = flag.Int("islands", 8, "island count for -family archipelago (tasks/edges flags size each island)")
		gap     = flag.Int("gap", 2, "zero-load gap edges between islands for -family archipelago")
		seed    = flag.Int64("seed", 1, "generator seed")
		edges   = flag.Int("edges", 16, "number of path/ring edges")
		tasks   = flag.Int("tasks", 32, "number of tasks")
		capLo   = flag.Int64("caplo", 64, "minimum edge capacity")
		capHi   = flag.Int64("caphi", 257, "edge capacity upper bound (exclusive)")
		class   = flag.String("class", "mixed", "demand class: mixed | small | medium | large")
		slack   = flag.Int("slack", 2, "window slack for -family window")
	)
	flag.Parse()

	classOf := map[string]gen.Class{
		"mixed": gen.Mixed, "small": gen.Small, "medium": gen.Medium, "large": gen.Large,
	}
	cls, ok := classOf[*class]
	if !ok {
		fatalf("unknown class %q", *class)
	}

	var in *model.Instance
	switch *family {
	case "random":
		in = gen.Random(gen.Config{Seed: *seed, Edges: *edges, Tasks: *tasks, CapLo: *capLo, CapHi: *capHi, Class: cls})
	case "uniform":
		in = gen.Uniform(*seed, *edges, *tasks, *capLo, cls)
	case "memtrace":
		in = gen.MemTrace(gen.MemTraceConfig{Seed: *seed, Slots: *edges, Objects: *tasks})
	case "banner":
		in = gen.Banner(gen.BannerConfig{Seed: *seed, Days: *edges, Ads: *tasks})
	case "spectrum":
		in = gen.Spectrum(gen.SpectrumConfig{Seed: *seed, Segments: *edges, Demands: *tasks})
	case "knapsack":
		in = gen.KnapsackDegenerate(*seed, *tasks, *capLo)
	case "nba":
		in = gen.NBA(*seed, *edges, *tasks)
	case "staircase":
		in = gen.Staircase(*seed, *edges, *tasks, 16, cls)
	case "archipelago":
		in = gen.Archipelago(gen.ArchipelagoConfig{
			Seed: *seed, Islands: *islands, IslandEdges: *edges, GapEdges: *gap,
			TasksPerIsland: *tasks, CapLo: *capLo, CapHi: *capHi, Class: cls,
		})
	case "fig1a":
		in = gen.Fig1a()
	case "fig1b":
		in = gen.Fig1b()
	case "fig2a":
		in = gen.Fig2a()
	case "fig2b":
		in = gen.Fig2b()
	case "fig8":
		in = gen.Fig8()
	case "gapchain":
		in = gen.GapChain(*tasks)
	case "window":
		base := gen.Random(gen.Config{Seed: *seed, Edges: *edges, Tasks: *tasks, CapLo: *capLo, CapHi: *capHi, Class: cls})
		win := window.Widen(window.Fixed(base), *slack)
		if err := win.WriteJSON(os.Stdout); err != nil {
			fatalf("write: %v", err)
		}
		return
	case "ring":
		ring := gen.Ring(*seed, *edges, *tasks, *capLo, *capHi)
		if err := ring.WriteJSON(os.Stdout); err != nil {
			fatalf("write: %v", err)
		}
		return
	default:
		fatalf("unknown family %q", *family)
	}
	if err := in.WriteJSON(os.Stdout); err != nil {
		fatalf("write: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapgen: "+format+"\n", args...)
	os.Exit(1)
}
