// Command sapserved is the long-running SAP solving service: an HTTP/JSON
// API over the combined path and ring solvers, fronted by a
// canonicalization cache, request deduplication, and admission control
// (internal/serve).
//
// Usage:
//
//	sapserved -addr :8080
//	curl -s localhost:8080/healthz
//	sapgen -family random | curl -s -X POST --data-binary @- localhost:8080/v1/solve
//	curl -s localhost:8080/metricsz
//
// Endpoints:
//
//	POST /v1/solve    solve a path or ring instance (model JSON format);
//	                  ?timeout=2s caps the solve, clamped to -max-timeout
//	POST   /v1/session             create an incremental session from an instance
//	POST   /v1/session/{id}/delta  apply a task add/remove delta; returns the
//	                               updated allocation and resolved_shards
//	DELETE /v1/session/{id}        delete a session
//	GET  /healthz     liveness; 503 once draining
//	GET  /metricsz    expvar bridge with the sapalloc metrics registry
//
// On SIGINT/SIGTERM the server drains: health flips to 503, new solves
// are refused with Retry-After, and in-flight requests get -grace to
// finish before the listener closes.
//
// With -peers, decomposable solves scatter their shards over the named
// sapserved backends (POST /v1/shard) through internal/dist's robustness
// envelope — retries, hedging, circuit breakers, and local fallback — so a
// sick or absent pool degrades to the single-node behaviour rather than
// failing requests:
//
//	sapserved -addr :8080 -peers http://node1:8080,http://node2:8080
//
// With -store-dir, solved responses persist in the durable, tamper-evident
// solve store (internal/store). A restarted server replays and verifies
// the Merkle-chained log — truncating a crash's torn tail — and serves
// previously solved instances byte-identically without re-solving, marked
// "X-Sapalloc-Cache: store" and carrying an X-Sapalloc-Provenance header.
// -store-sync trades latency for host-crash durability; sapstore verifies
// and compacts store directories offline.
//
//	sapserved -addr :8080 -store-dir /var/lib/sapalloc/store
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sapalloc/internal/core"
	"sapalloc/internal/dist"
	"sapalloc/internal/obscli"
	"sapalloc/internal/serve"
	"sapalloc/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		eps         = flag.Float64("eps", 0.5, "ε for the approximation guarantees")
		workers     = flag.Int("workers", 0, "goroutine bound per solve (0 = GOMAXPROCS)")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "hard per-request deadline ceiling")
		defTimeout  = flag.Duration("default-timeout", 0, "deadline when the request names none (0 = max-timeout)")
		concurrency = flag.Int("concurrency", 0, "simultaneous solves (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue", 64, "requests allowed to wait beyond -concurrency before 429s")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		cacheEnts   = flag.Int("cache-entries", 4096, "canonicalization cache: max cached responses")
		cacheTasks  = flag.Int64("cache-tasks", 1<<20, "canonicalization cache: max total tasks across cached instances")
		maxBody     = flag.Int64("max-body-bytes", 32<<20, "request body size cap")
		maxSessions = flag.Int("max-sessions", 1024, "live incremental sessions before creates shed with 429")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "idle session lifetime before lazy eviction")
		grace       = flag.Duration("grace", 30*time.Second, "drain window for in-flight requests on shutdown")
		storeDir    = flag.String("store-dir", "", "durable solve store directory (empty = no persistence); restarts replay and verify the log and serve stored responses byte-identically")
		storeSync   = flag.Duration("store-flush-interval", 0, "store write-batch latency trigger (0 = 50ms)")
		storeFsync  = flag.Bool("store-sync", false, "fsync the store after every batch (host-crash durability at a latency cost)")

		peers           = flag.String("peers", "", "comma-separated backend base URLs for distributed shard fan-out (empty = solve everything locally)")
		rpcTimeout      = flag.Duration("rpc-timeout", 0, "per-attempt shard RPC deadline (0 = 2s, negative = parent deadline only)")
		rpcRetries      = flag.Int("rpc-retries", 0, "remote attempts per shard (0 = 3, negative = no retries)")
		hedgeAfter      = flag.Duration("hedge-after", 0, "hedge a shard RPC after this quiet period (0 = 50ms floor raised to the backend p95, negative = no hedging)")
		breakerFails    = flag.Int("breaker-failures", 0, "consecutive failures that open a backend's breaker (0 = 5, negative = no breaker)")
		breakerWindow   = flag.Duration("breaker-window", 0, "error-rate observation window (0 = 10s)")
		breakerRate     = flag.Float64("breaker-rate", 0, "windowed error rate that opens the breaker (0 = 0.5)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before half-open probes (0 = 5s)")
		healthInterval  = flag.Duration("health-interval", 5*time.Second, "active /healthz probe period for tripped breakers (0 = no prober)")
	)
	obsFlags := obscli.RegisterServing(flag.CommandLine)
	flag.Parse()
	stopObs, err := obsFlags.Start("sapserved")
	if err != nil {
		fatalf("%v", err)
	}
	defer stopObs()

	params := core.Params{Eps: *eps, Workers: *workers}
	if list := splitPeers(*peers); len(list) > 0 {
		pool, err := dist.New(dist.Config{
			Peers:           list,
			MaxAttempts:     *rpcRetries,
			PerTryTimeout:   *rpcTimeout,
			HedgeAfter:      *hedgeAfter,
			BreakerFailures: *breakerFails,
			BreakerWindow:   *breakerWindow,
			BreakerRate:     *breakerRate,
			BreakerCooldown: *breakerCooldown,
			HealthInterval:  *healthInterval,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer pool.Close()
		params.Distributor = pool.Distributor
		fmt.Fprintf(os.Stderr, "sapserved: distributing shards over %d peers\n", pool.Backends())
	}

	var solveStore *store.File
	if *storeDir != "" {
		st, err := store.OpenFile(*storeDir, store.FileConfig{
			FlushInterval: *storeSync,
			Sync:          *storeFsync,
		})
		if err != nil {
			fatalf("open store %s: %v", *storeDir, err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "sapserved: close store: %v\n", err)
			}
		}()
		solveStore = st
		stats := st.Stats()
		if stats.RecoveryErr != nil {
			fmt.Fprintf(os.Stderr, "sapserved: store recovered: %v\n", stats.RecoveryErr)
		}
		fmt.Fprintf(os.Stderr, "sapserved: store %s warm: %d records, %d batches, head %s\n",
			*storeDir, stats.Records, stats.Batches, stats.Head)
	}

	cfg := serve.Config{
		Params:         params,
		MaxTimeout:     *maxTimeout,
		DefaultTimeout: *defTimeout,
		Concurrency:    *concurrency,
		Queue:          *queueDepth,
		RetryAfter:     *retryAfter,
		MaxBodyBytes:   *maxBody,
		CacheEntries:   *cacheEnts,
		CacheTasks:     *cacheTasks,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	}
	if solveStore != nil {
		// Assign only when a store exists: a nil *store.File stuffed into
		// the interface field would read as a configured store.
		cfg.Store = solveStore
	}
	srv := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sapserved: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fatalf("listen %s: %v", *addr, err)
	case <-ctx.Done():
	}

	// Drain: stop advertising health, refuse new solves, let in-flight
	// requests finish within the grace window, then close the listener.
	fmt.Fprintf(os.Stderr, "sapserved: draining (grace %v)\n", *grace)
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sapserved: forced shutdown: %v\n", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "sapserved: drained, exiting")
}

// splitPeers parses the -peers list, dropping empty elements so trailing
// commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapserved: "+format+"\n", args...)
	os.Exit(1)
}
