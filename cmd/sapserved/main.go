// Command sapserved is the long-running SAP solving service: an HTTP/JSON
// API over the combined path and ring solvers, fronted by a
// canonicalization cache, request deduplication, and admission control
// (internal/serve).
//
// Usage:
//
//	sapserved -addr :8080
//	curl -s localhost:8080/healthz
//	sapgen -family random | curl -s -X POST --data-binary @- localhost:8080/v1/solve
//	curl -s localhost:8080/metricsz
//
// Endpoints:
//
//	POST /v1/solve    solve a path or ring instance (model JSON format);
//	                  ?timeout=2s caps the solve, clamped to -max-timeout
//	GET  /healthz     liveness; 503 once draining
//	GET  /metricsz    expvar bridge with the sapalloc metrics registry
//
// On SIGINT/SIGTERM the server drains: health flips to 503, new solves
// are refused with Retry-After, and in-flight requests get -grace to
// finish before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sapalloc/internal/core"
	"sapalloc/internal/obscli"
	"sapalloc/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		eps         = flag.Float64("eps", 0.5, "ε for the approximation guarantees")
		workers     = flag.Int("workers", 0, "goroutine bound per solve (0 = GOMAXPROCS)")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "hard per-request deadline ceiling")
		defTimeout  = flag.Duration("default-timeout", 0, "deadline when the request names none (0 = max-timeout)")
		concurrency = flag.Int("concurrency", 0, "simultaneous solves (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue", 64, "requests allowed to wait beyond -concurrency before 429s")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		cacheEnts   = flag.Int("cache-entries", 4096, "canonicalization cache: max cached responses")
		cacheTasks  = flag.Int64("cache-tasks", 1<<20, "canonicalization cache: max total tasks across cached instances")
		maxBody     = flag.Int64("max-body-bytes", 32<<20, "request body size cap")
		grace       = flag.Duration("grace", 30*time.Second, "drain window for in-flight requests on shutdown")
	)
	obsFlags := obscli.RegisterServing(flag.CommandLine)
	flag.Parse()
	stopObs, err := obsFlags.Start("sapserved")
	if err != nil {
		fatalf("%v", err)
	}
	defer stopObs()

	srv := serve.New(serve.Config{
		Params:         core.Params{Eps: *eps, Workers: *workers},
		MaxTimeout:     *maxTimeout,
		DefaultTimeout: *defTimeout,
		Concurrency:    *concurrency,
		Queue:          *queueDepth,
		RetryAfter:     *retryAfter,
		MaxBodyBytes:   *maxBody,
		CacheEntries:   *cacheEnts,
		CacheTasks:     *cacheTasks,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sapserved: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fatalf("listen %s: %v", *addr, err)
	case <-ctx.Done():
	}

	// Drain: stop advertising health, refuse new solves, let in-flight
	// requests finish within the grace window, then close the listener.
	fmt.Fprintf(os.Stderr, "sapserved: draining (grace %v)\n", *grace)
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "sapserved: forced shutdown: %v\n", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "sapserved: drained, exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapserved: "+format+"\n", args...)
	os.Exit(1)
}
