// Command sapviz renders a SAP instance — and optionally a solution — as
// ASCII art: edges on the horizontal axis, storage height on the vertical
// axis, the capacity profile shaded, tasks as lettered rectangles.
//
// Usage:
//
//	sapgen -family fig8 | sapviz
//	sapviz -in inst.json -sol sol.json -rows 30
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sapalloc/internal/model"
	"sapalloc/internal/viz"
)

func main() {
	var (
		inPath  = flag.String("in", "-", "instance path ('-' for stdin)")
		solPath = flag.String("sol", "", "optional solution path (JSON from sapsolve -json)")
		rows    = flag.Int("rows", 20, "max text rows for the height axis")
	)
	flag.Parse()

	r, err := openInput(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer r.Close()
	in, err := model.ReadInstanceJSON(r)
	if err != nil {
		fatalf("%v", err)
	}
	sol := &model.Solution{}
	if *solPath != "" {
		f, err := os.Open(*solPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		sol, err = model.ReadSolutionJSON(f, in)
		if err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Print(viz.RenderSolution(in, sol, viz.Options{MaxRows: *rows}))
	if sol.Len() > 0 {
		fmt.Print(viz.Legend(in, sol))
		fmt.Println(viz.Summary(in, sol))
	}
}

func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sapviz: "+format+"\n", args...)
	os.Exit(1)
}
