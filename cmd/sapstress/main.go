// Command sapstress soak-tests the library: for a wall-clock budget it
// generates randomized workloads and cross-checks every pipeline invariant
// the test suite asserts, but over an unbounded instance stream —
// feasibility of all solvers, agreement of the two independent exact
// engines, LP upper-bound dominance, and gravity/validator consistency.
// Any violation aborts with a reproducer seed.
//
// Usage:
//
//	sapstress -duration 30s -workers 4
//
// With -peers, half the cases are archipelago instances whose shards
// scatter over the named sapserved backends through internal/dist — the
// same retry/hedge/breaker/fallback envelope production uses — and the
// periodic summary grows a dist: section (RPCs, retries, hedges, breaker
// trips, local fallbacks). Every invariant still holds under backend
// failure because the envelope degrades to local solves.
//
// With -sessions, cases instead churn the incremental session engine: each
// case opens a session over a random archipelago, drives a seeded stream of
// add/remove deltas, and after every delta cross-checks the maintained
// allocation for feasibility and byte-identity against a cold solve of the
// current task set. The periodic summary grows a session: section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sapalloc/internal/chendp"
	"sapalloc/internal/core"
	"sapalloc/internal/dist"
	"sapalloc/internal/dsa"
	"sapalloc/internal/exact"
	"sapalloc/internal/gen"
	"sapalloc/internal/lp"
	"sapalloc/internal/model"
	"sapalloc/internal/obs"
	"sapalloc/internal/obscli"
	"sapalloc/internal/par"
	"sapalloc/internal/session"
)

func main() {
	var (
		duration = flag.Duration("duration", 15*time.Second, "wall-clock soak budget")
		workers  = flag.Int("workers", 0, "parallel checkers (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "base seed (printed for reproduction)")
		timeout  = flag.Duration("timeout", 0, "per-case solve deadline (0 = none); degraded-but-feasible results pass, degradation-to-nothing is a failure")
		interval = flag.Duration("metrics-interval", 5*time.Second, "with -metrics: period of the one-line metrics summary")
		peers    = flag.String("peers", "", "comma-separated sapserved base URLs: scatter shard solves remotely through the dist envelope")
		sessions = flag.Bool("sessions", false, "churn mode: each case drives an incremental session through seeded deltas, cross-checking every state against a cold solve")
	)
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()
	stopObs, err := obsFlags.Start("sapstress")
	if err != nil {
		log.Fatalf("sapstress: %v", err)
	}
	defer stopObs()
	fmt.Printf("sapstress: base seed %d, budget %s\n", *seed, *duration)

	var pool *dist.Pool
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		pool, err = dist.New(dist.Config{Peers: list})
		if err != nil {
			log.Fatalf("sapstress: %v", err)
		}
		defer pool.Close()
		fmt.Printf("sapstress: distributing shards over %d peers\n", pool.Backends())
	}

	// Periodic one-line summary so long soaks show forward progress and
	// counter drift without waiting for the exit dump.
	if obsFlags.Metrics && *interval > 0 {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		tickDone := make(chan struct{})
		defer close(tickDone)
		go func() {
			for {
				select {
				case <-ticker.C:
					line := obs.Summary()
					if pool != nil {
						line += " " + obs.DistSummary()
					}
					if *sessions {
						line += " " + obs.SessionSummary()
					}
					fmt.Fprintf(os.Stderr, "sapstress: %s\n", line)
				case <-tickDone:
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(*duration)
	var iterations, failures int64
	var mu sync.Mutex
	firstFailure := ""

	w := par.Workers(*workers, 1<<30)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := int64(0); time.Now().Before(deadline); i++ {
				// Disjoint per-worker strides: worker k draws the seeds
				// ≡ k (mod w), so no two workers ever re-check the same
				// case no matter how long the soak runs. (The old
				// worker*1_000_003 offsets collided once any worker
				// passed 1,000,003 iterations.) The printed reproducer
				// seed is caseSeed itself, so replay stays exact.
				caseSeed := *seed + i*int64(w) + int64(worker)
				check := checkOne
				if *sessions {
					check = func(s int64, to time.Duration, _ *dist.Pool) string {
						return checkSessionChurn(s, to)
					}
				}
				if msg := check(caseSeed, *timeout, pool); msg != "" {
					atomic.AddInt64(&failures, 1)
					mu.Lock()
					if firstFailure == "" {
						firstFailure = fmt.Sprintf("seed %d: %s", caseSeed, msg)
					}
					mu.Unlock()
					return
				}
				atomic.AddInt64(&iterations, 1)
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("sapstress: %d cases checked, %d failures\n", iterations, failures)
	if failures > 0 {
		log.Printf("FIRST FAILURE: %s", firstFailure)
		os.Exit(1)
	}
}

// checkSessionChurn soaks the incremental session engine: one session per
// case, a seeded stream of add/remove deltas over an archipelago pool, and
// after every delta the maintained allocation is cross-checked for
// feasibility and byte-identity against a cold solve of the current task
// set — the same invariant internal/difftest pins, over an unbounded case
// stream.
func checkSessionChurn(seed int64, timeout time.Duration) string {
	r := rand.New(rand.NewSource(seed))
	pool := gen.Archipelago(gen.ArchipelagoConfig{
		Seed:           seed,
		Islands:        2 + r.Intn(4),
		IslandEdges:    1 + r.Intn(6),
		GapEdges:       r.Intn(3),
		TasksPerIsland: 1 + r.Intn(10),
		CapLo:          16, CapHi: 65,
		Class: gen.Class(r.Intn(4)),
	})
	params := core.Params{Exact: exact.Options{MaxNodes: 200_000}}
	sess, err := session.New(pool.Capacity, session.Options{Params: params})
	if err != nil {
		return fmt.Sprintf("session.New: %v", err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	inSet := make(map[int]bool)
	for step := 0; step < 6; step++ {
		var d session.Delta
		for _, tk := range pool.Tasks {
			if inSet[tk.ID] {
				if r.Intn(3) == 0 {
					d.Remove = append(d.Remove, tk.ID)
				}
			} else if r.Intn(2) == 0 {
				d.Add = append(d.Add, tk)
			}
		}
		res, err := sess.Apply(ctx, d)
		if err != nil {
			return fmt.Sprintf("session delta %d: %v", step, err)
		}
		for _, id := range d.Remove {
			delete(inSet, id)
		}
		for _, tk := range d.Add {
			inSet[tk.ID] = true
		}
		cur := &model.Instance{Capacity: pool.Capacity, Tasks: sess.Tasks()}
		if err := model.ValidSAP(cur, res.Solution); err != nil {
			return fmt.Sprintf("session delta %d: infeasible allocation: %v", step, err)
		}
		if !res.Full && res.Resolved+res.Reused != res.Shards {
			return fmt.Sprintf("session delta %d: shard accounting %d+%d != %d", step, res.Resolved, res.Reused, res.Shards)
		}
		cold, err := core.SolveCtx(ctx, cur, params)
		if err != nil {
			return fmt.Sprintf("session delta %d: cold reference: %v", step, err)
		}
		if cold.Solution.Len() != res.Solution.Len() || cold.Solution.Weight() != res.Weight {
			return fmt.Sprintf("session delta %d: incremental (w=%d n=%d) != cold (w=%d n=%d)",
				step, res.Weight, res.Solution.Len(), cold.Solution.Weight(), cold.Solution.Len())
		}
		for i := range cold.Solution.Items {
			if cold.Solution.Items[i] != res.Solution.Items[i] {
				return fmt.Sprintf("session delta %d: allocation diverges from cold solve at item %d", step, i)
			}
		}
	}
	return ""
}

// checkOne runs every invariant on one randomized case; returns "" on
// success or a description of the first violation. A non-zero timeout
// bounds the combined solve: degraded-but-feasible results still pass every
// downstream invariant, and degradation-to-nothing (a typed error with no
// solution) counts as a failure so the soak flags hangs and dead arms.
func checkOne(seed int64, timeout time.Duration, pool *dist.Pool) string {
	r := rand.New(rand.NewSource(seed))
	var in *model.Instance
	if pool != nil && seed%2 == 0 {
		// Distributed mode: every other case is an archipelago, so the
		// zero-load-cut decomposition produces shards for the pool to
		// scatter (a non-decomposable instance never leaves the process).
		in = gen.Archipelago(gen.ArchipelagoConfig{
			Seed:           seed,
			Islands:        2 + r.Intn(4),
			IslandEdges:    1 + r.Intn(6),
			GapEdges:       r.Intn(3),
			TasksPerIsland: 1 + r.Intn(10),
			CapLo:          16, CapHi: 65,
			Class: gen.Class(r.Intn(4)),
		})
	} else {
		in = gen.Random(gen.Config{
			Seed:  seed,
			Edges: 2 + r.Intn(8),
			Tasks: 1 + r.Intn(16),
			CapLo: 4 + r.Int63n(28),
			CapHi: 33 + r.Int63n(96),
			Class: gen.Class(r.Intn(4)),
		})
	}

	// 1. Combined pipeline feasibility + LP dominance.
	params := core.Params{Exact: exact.Options{MaxNodes: 200_000}, Deadline: timeout}
	if pool != nil {
		params.Distributor = pool.Distributor
	}
	res, err := core.SolveCtx(context.Background(), in, params)
	if err != nil {
		return fmt.Sprintf("core.SolveCtx (degradation-to-nothing): %v", err)
	}
	if err := model.ValidSAP(in, res.Solution); err != nil {
		return fmt.Sprintf("combined infeasible: %v", err)
	}
	_, lpOpt, err := lp.UFPPFractional(in)
	if err != nil {
		return fmt.Sprintf("lp: %v", err)
	}
	if float64(res.Solution.Weight()) > lpOpt+1e-6*(1+lpOpt) {
		return fmt.Sprintf("weight %d above LP bound %g", res.Solution.Weight(), lpOpt)
	}

	// 2. Gravity preserves everything.
	g := dsa.Gravity(res.Solution)
	if err := model.ValidSAP(in, g); err != nil {
		return fmt.Sprintf("gravity infeasible: %v", err)
	}
	if g.Weight() != res.Solution.Weight() {
		return "gravity changed weight"
	}
	if !dsa.IsGrounded(g) {
		return "gravity output not grounded"
	}

	// 3. On small uniform sub-cases, the two exact engines agree.
	if len(in.Tasks) <= 9 {
		k := int64(2 + r.Intn(5))
		u := gen.Uniform(seed, in.Edges(), len(in.Tasks), k, gen.Mixed)
		for j := range u.Tasks {
			if u.Tasks[j].Demand > k {
				u.Tasks[j].Demand = 1 + u.Tasks[j].Demand%k
			}
		}
		dp, err := chendp.Solve(u, chendp.Options{})
		if err != nil {
			return fmt.Sprintf("chendp: %v", err)
		}
		bb, err := exact.SolveSAP(u, exact.Options{})
		if err != nil {
			return fmt.Sprintf("exact: %v", err)
		}
		if dp.Weight() != bb.Weight() {
			return fmt.Sprintf("exact engines disagree: DP %d vs B&B %d", dp.Weight(), bb.Weight())
		}
		// And UFPP: path DP vs branch & bound.
		udp, err := exact.SolveUFPPPathDP(in, 0)
		if err == nil {
			ubb, err := exact.SolveUFPP(in, exact.Options{})
			if err != nil {
				return fmt.Sprintf("ufpp bb: %v", err)
			}
			if model.WeightOf(udp) != model.WeightOf(ubb) {
				return fmt.Sprintf("UFPP engines disagree: DP %d vs B&B %d", model.WeightOf(udp), model.WeightOf(ubb))
			}
		}
	}
	return ""
}
