// Package sapalloc is a production-quality Go implementation of
// "A Constant Factor Approximation Algorithm for the Storage Allocation
// Problem" by Bar-Yehuda, Beder and Rawitz (SPAA 2013; Algorithmica 2016).
//
// The storage allocation problem (SAP) schedules tasks on a capacitated
// path, assigning each selected task a contiguous vertical slab of the
// resource that is identical on every edge of its sub-path — rectangle
// packing where rectangles slide vertically but not horizontally. The
// library implements the paper's complete pipeline:
//
//   - internal/smallsap: Strip-Pack, (4+ε) for δ-small tasks (Theorem 1);
//   - internal/mediumsap: AlmostUniform + Elevator, (2+ε) for medium tasks
//     (Theorem 2);
//   - internal/largesap: the rectangle-packing reduction, (2k−1) for
//     1/k-large tasks (Theorem 3);
//   - internal/core: the combined (9+ε) algorithm (Theorem 4);
//   - internal/ringsap: the (10+ε) algorithm on rings (Theorem 5);
//
// together with every substrate the paper relies on — an LP solver
// (bounded-variable simplex), UFPP rounding and local-ratio algorithms,
// dynamic-storage-allocation strip packing, knapsack exact/FPTAS, exact
// branch-and-bound reference solvers — and a reproduction harness
// (internal/experiments, cmd/sapbench) that regenerates every figure and
// theorem-level claim of the paper as a measured table.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package sapalloc
