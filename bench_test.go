package sapalloc_test

// One benchmark per experiment of the reproduction harness (DESIGN.md §5,
// EXPERIMENTS.md) plus micro-benchmarks of the substrates. Run with
//
//	go test -bench=. -benchmem
//
// The Benchmark​E* targets regenerate the corresponding experiment's
// workload; absolute numbers are machine-local, but relative costs show
// where each pipeline spends its time.

import (
	"context"
	"testing"

	"sapalloc/internal/chendp"
	"sapalloc/internal/core"
	"sapalloc/internal/dsa"
	"sapalloc/internal/exact"
	"sapalloc/internal/experiments"
	"sapalloc/internal/gen"
	"sapalloc/internal/largesap"
	"sapalloc/internal/lp"
	"sapalloc/internal/mediumsap"
	"sapalloc/internal/model"
	"sapalloc/internal/oracle"
	"sapalloc/internal/ringsap"
	"sapalloc/internal/session"
	"sapalloc/internal/smallsap"
	"sapalloc/internal/stretch"
	"sapalloc/internal/ufpp"
	"sapalloc/internal/ufppfull"
	"sapalloc/internal/window"
)

func BenchmarkE1Fig1Gap(b *testing.B) {
	in := gen.Fig1b()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveSAP(in, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Classify(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 1, Edges: 32, Tasks: 2000, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small, large := in.SplitDelta(1, 16)
		if len(small)+len(large) != len(in.Tasks) {
			b.Fatal("partition lost tasks")
		}
	}
}

func BenchmarkE3Clip(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 2, Edges: 64, Tasks: 500, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.ClipCapacities(128)
	}
}

func BenchmarkE4StripPack(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 3, Edges: 12, Tasks: 120, CapLo: 256, CapHi: 1025, Class: gen.Small})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smallsap.Solve(in, smallsap.Params{})
		if err != nil {
			b.Fatal(err)
		}
		if err := oracle.CheckSAP(in, res.Solution); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5LocalRatioStrip(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 3, Edges: 12, Tasks: 120, CapLo: 256, CapHi: 1025, Class: gen.Small})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := smallsap.Solve(in, smallsap.Params{Rounding: smallsap.LocalRatio})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkE6StripConvert(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 4, Edges: 16, Tasks: 200, CapLo: 512, CapHi: 513, Class: gen.Small})
	half, _, err := ufpp.HalfPackable(in, 512, ufpp.RoundOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dsa.ConvertToStrip(half, 256)
	}
}

func BenchmarkE7Medium(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 5, Edges: 6, Tasks: 14, CapLo: 64, CapHi: 257, Class: gen.Medium})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mediumsap.Solve(in, mediumsap.Params{Eps: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Gravity(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 6, Edges: 16, Tasks: 300, CapLo: 512, CapHi: 513, Class: gen.Small})
	sol, _ := dsa.PackStrip(in.Tasks, 400, dsa.ByInput)
	lifted := sol.Clone().Lift(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dsa.Gravity(lifted)
	}
}

func BenchmarkE9Large(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 7, Edges: 10, Tasks: 40, CapLo: 64, CapHi: 257, Class: gen.Large})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := largesap.Solve(in, largesap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = sol
	}
}

func BenchmarkE10Degeneracy(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 8, Edges: 10, Tasks: 200, CapLo: 64, CapHi: 257, Class: gen.Large})
	rects := largesap.RectanglesOf(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = largesap.SmallestLastColoring(rects)
	}
}

func BenchmarkE11Combined(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 9, Edges: 10, Tasks: 60, CapLo: 128, CapHi: 513, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(in, core.Params{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkE11CombinedWorkers measures the whole-pipeline speedup of the
// parallel arm fan-out (core.Params.Workers). The Result is identical for
// both worker counts; only wall clock differs. The machine-readable twin
// lives in the internal/benchjson pinned subset (BENCH.json).
func BenchmarkE11CombinedWorkers(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 9, Edges: 10, Tasks: 60, CapLo: 128, CapHi: 513, Class: gen.Mixed})
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(in, core.Params{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE30Shard measures the shard scatter's speedup: an archipelago
// decomposes at its zero-load gaps into twelve independent sub-instances,
// so the workers fan out over whole combined solves — the coarsest
// parallelism in the pipeline. Same instance and byte-identical Result at
// both worker counts (the shard determinism contract); only wall clock
// differs. The machine-readable twin lives in the internal/benchjson
// pinned subset, and CI gates workers=4 at ≥2x via sapbench -minspeedup.
func BenchmarkE30Shard(b *testing.B) {
	in := gen.Archipelago(gen.ArchipelagoConfig{
		Seed: 31, Islands: 12, IslandEdges: 8, GapEdges: 2,
		TasksPerIsland: 18, CapLo: 64, CapHi: 257, Class: gen.Mixed,
	})
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(in, core.Params{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE11CombinedMemTrace(b *testing.B) {
	in := gen.MemTrace(gen.MemTraceConfig{Seed: 10, Slots: 48, Objects: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(in, core.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12Ring(b *testing.B) {
	ring := gen.Ring(11, 8, 30, 64, 257)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ringsap.Solve(ring, ringsap.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13BestOf(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 12, Edges: 8, Tasks: 40, CapLo: 64, CapHi: 257, Class: gen.Mixed})
	res, err := core.Solve(in, core.Params{})
	if err != nil {
		b.Fatal(err)
	}
	sols := []*model.Solution{res.SmallDetail.Solution, res.MediumDetail.Solution, res.Solution}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.BestOf(sols)
	}
}

func BenchmarkE14LPGap(b *testing.B) {
	in := gen.Staircase(13, 16, 60, 16, gen.Mixed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.UFPPFractional(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkLPSimplexMedium(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 14, Edges: 32, Tasks: 200, Class: gen.Small})
	p := lp.UFPPRelaxation(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstFit1000(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 15, Edges: 64, Tasks: 1000, CapLo: 4096, CapHi: 4097, Class: gen.Small})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dsa.PackStripUnbounded(in.Tasks, dsa.ByStart)
	}
}

func BenchmarkExactSAP12(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 16, Edges: 5, Tasks: 12, CapLo: 16, CapHi: 65, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveSAP(in, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidSAP(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 17, Edges: 32, Tasks: 500, CapLo: 4096, CapHi: 4097, Class: gen.Small})
	sol, _ := dsa.PackStrip(in.Tasks, 4096, dsa.ByStart)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := model.ValidSAP(in, sol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteQuick times the entire quick experiment suite — the
// regeneration cost of EXPERIMENTS.md's reduced form.
func BenchmarkSuiteQuick(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (experiments.Suite{Quick: true}).RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15DeltaSweep(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 18, Edges: 8, Tasks: 40, CapLo: 64, CapHi: 257, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, den := range []int64{4, 16, 32} {
			if _, err := core.Solve(in, core.Params{DeltaDen: den}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE16UniformBaseline(b *testing.B) {
	in := gen.Uniform(19, 16, 200, 64, gen.Mixed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ufpp.UniformBaseline(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17PackingOrders(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 20, Edges: 12, Tasks: 300, CapLo: 2048, CapHi: 2049, Class: gen.Small})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ord := range []dsa.Order{dsa.ByStart, dsa.ByDensity, dsa.ByInput} {
			_, _ = dsa.PackStripUnbounded(in.Tasks, ord)
		}
	}
}

func BenchmarkE18ChenDP(b *testing.B) {
	in := gen.Uniform(21, 10, 30, 4, gen.Mixed)
	for j := range in.Tasks {
		if in.Tasks[j].Demand > 4 {
			in.Tasks[j].Demand = 1 + in.Tasks[j].Demand%4
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chendp.Solve(in, chendp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE19MinStretch(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 22, Edges: 10, Tasks: 80, CapLo: 64, CapHi: 257, Class: gen.Small})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stretch.MinStretch(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE21MWULarge(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 23, Edges: 32, Tasks: 1000, CapLo: 256, CapHi: 1025, Class: gen.Small})
	p := lp.UFPPRelaxation(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.ApproxPacking(p, lp.ApproxOptions{Eps: 0.2, MaxIters: 5000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelMediumWorkers(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 24, Edges: 8, Tasks: 20, CapLo: 64, CapHi: 4097, Class: gen.Medium})
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mediumsap.Solve(in, mediumsap.Params{Eps: 0.5, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE22UFPPFull(b *testing.B) {
	in := gen.Random(gen.Config{Seed: 25, Edges: 10, Tasks: 60, CapLo: 128, CapHi: 513, Class: gen.Mixed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ufppfull.Solve(in, ufppfull.Params{})
		if err != nil {
			b.Fatal(err)
		}
		if err := model.ValidUFPP(in, res.Tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE35SessionChurn measures one churn delta (remove a task, re-add
// it) through the incremental session engine vs the same engine forced to
// cold re-solves. The archipelago has 12 islands, so the incremental path
// re-solves 1 shard per delta where the full baseline re-solves all 12;
// benchjson pins the twin workload and gates the ratio at ≥5x.
func BenchmarkE35SessionChurn(b *testing.B) {
	pool := gen.Archipelago(gen.ArchipelagoConfig{
		Seed: 35, Islands: 12, IslandEdges: 8, GapEdges: 2,
		TasksPerIsland: 18, CapLo: 64, CapHi: 257, Class: gen.Mixed,
	})
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sess, err := session.New(pool.Capacity, session.Options{Params: core.Params{Workers: 1}, Full: mode.full})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Apply(context.Background(), session.Delta{Add: pool.Tasks}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := pool.Tasks[i%len(pool.Tasks)]
				if _, err := sess.Apply(context.Background(), session.Delta{Remove: []int{t.ID}, Add: []model.Task{t}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE23WindowExact(b *testing.B) {
	sap := gen.Random(gen.Config{Seed: 26, Edges: 5, Tasks: 9, CapLo: 8, CapHi: 33, Class: gen.Mixed})
	in := window.Widen(window.Fixed(sap), 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := window.SolveExact(in, window.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
