// SAP on ring networks (Section 7 of the paper): tasks on a cycle may be
// routed clockwise or counter-clockwise, and the algorithm of Theorem 5
// combines a cut-edge path solution with a knapsack stack through the
// minimum-capacity edge for a (10+ε)-approximation.
//
// The example builds a metro-ring workload, solves it, compares against the
// exact ring optimum (the instance is small enough), and shows which
// reduction arm won.
package main

import (
	"errors"
	"fmt"
	"log"

	"sapalloc/internal/exact"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/ringsap"
)

func main() {
	ring := gen.Ring(9, 6, 9, 16, 48)
	fmt.Printf("ring: %d edges, capacities %v\n", ring.Edges(), ring.Capacity)
	fmt.Printf("tasks: %d (each may route cw or ccw)\n\n", len(ring.Tasks))

	res, err := ringsap.Solve(ring, ringsap.Params{Eps: 0.5})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := model.ValidRingSAP(ring, res.Solution); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("cut edge: %d (the ring minimum)\n", res.CutEdge)
	fmt.Printf("arm weights: path=%d, knapsack-through-cut=%d → winner: %s\n",
		res.PathWeight, res.KnapsackWeight, res.Winner)
	fmt.Printf("scheduled %d/%d tasks, weight %d\n\n", res.Solution.Len(), len(ring.Tasks), res.Solution.Weight())

	for _, p := range res.Solution.Items {
		fmt.Printf("  task %d  %-3s  slots [%d,%d)  weight %d\n",
			p.Task.ID, p.Orientation, p.Height, p.Top(), p.Task.Weight)
	}

	// Exact comparison (orientation enumeration + branch & bound). On a
	// budget exhaustion the incumbent is still a valid lower bound on OPT.
	opt, err := exact.SolveRingSAP(ring, exact.Options{})
	note := ""
	if errors.Is(err, exact.ErrBudget) {
		note = " (search budget hit — incumbent optimum)"
	} else if err != nil {
		log.Fatalf("exact: %v", err)
	}
	fmt.Printf("\nexact ring optimum: %d%s → measured ratio %.2f (proven bound 10+ε)\n",
		opt.Weight(), note, float64(opt.Weight())/float64(res.Solution.Weight()))
}
