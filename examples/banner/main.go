// Banner advertising: the second motivating scenario in the paper's
// introduction. The resource is a banner of fixed pixel height; each
// advertisement books a contiguous horizontal stripe of a given height for
// a date range, paying a price. The publisher schedules a maximum-revenue
// subset and assigns each ad its stripe.
//
// The example books a month of ads, solves with both the combined algorithm
// and the small-task Strip-Pack alone, and prints the revenue comparison.
package main

import (
	"fmt"
	"log"

	"sapalloc/internal/core"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/smallsap"
	"sapalloc/internal/viz"
)

func main() {
	month := gen.Banner(gen.BannerConfig{Seed: 12, Days: 30, Ads: 50, Height: 600})
	fmt.Printf("bookings: %d ads over %d days, banner height %d px, asked revenue %d\n",
		len(month.Tasks), month.Edges(), month.Capacity[0], month.TotalWeight())

	res, err := core.Solve(month, core.Params{Eps: 0.5})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := model.ValidSAP(month, res.Solution); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("combined algorithm: %d ads, revenue %d (winner: %s)\n",
		res.Solution.Len(), res.Solution.Weight(), res.Winner)

	// Strip-Pack alone (the ads are mostly δ-small against a 600px banner).
	sp, err := smallsap.Solve(month, smallsap.Params{})
	if err != nil {
		log.Fatalf("strip-pack: %v", err)
	}
	fmt.Printf("strip-pack alone:   %d ads, revenue %d\n", sp.Solution.Len(), sp.Solution.Weight())

	// Render the month's banner schedule.
	fmt.Println()
	fmt.Print(viz.RenderSolution(month, res.Solution, viz.Options{MaxRows: 20, CellWidth: 2}))
}
