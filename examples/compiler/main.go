// Compile-time memory planning: the DSA-flavoured use of the library.
// A compiler knows every buffer's size and live range and must assign each
// a fixed contiguous address range (buffers cannot move at runtime — SAP's
// defining constraint). Two questions arise:
//
//  1. Given a fixed arena, which buffers stay in fast memory (the weighted
//     selection problem — Theorem 4's algorithm), and
//  2. How large must the arena be to hold ALL buffers (the DSA question,
//     generalised to non-uniform capacities in the paper's conclusion —
//     the stretch package).
//
// This example answers both for a synthetic tensor-like allocation plan.
package main

import (
	"fmt"
	"log"

	"sapalloc/internal/core"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/stretch"
)

func main() {
	// A layered computation: activations live for a few steps, weights for
	// the whole program. MemTrace approximates the shape well.
	plan := gen.MemTrace(gen.MemTraceConfig{Seed: 3, Slots: 40, Objects: 70, Heap: 1024})
	fmt.Printf("allocation plan: %d buffers over %d program points\n", len(plan.Tasks), plan.Edges())

	// Question 1: a 1 KiB scratchpad — which buffers live there?
	res, err := core.Solve(plan, core.Params{})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := model.ValidSAP(plan, res.Solution); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("scratchpad (1024 B): %d/%d buffers resident, value %d/%d (winner: %s)\n",
		res.Solution.Len(), len(plan.Tasks), res.Solution.Weight(), plan.TotalWeight(), res.Winner)

	// Question 2: how big must the arena be to host EVERY buffer at a fixed
	// address? (minimum-stretch DSA; the lower bound is the peak live size.)
	st, err := stretch.MinStretch(plan)
	if err != nil {
		log.Fatalf("stretch: %v", err)
	}
	arena := int64(st.Rho() * float64(plan.Capacity[0]))
	peak := plan.MaxLoad(plan.Tasks)
	fmt.Printf("full-residency arena: %d B (stretch %.3f, certified lower bound %.3f)\n",
		arena, st.Rho(), st.LowerBoundRho())
	fmt.Printf("peak live bytes:      %d B → fragmentation overhead %.1f%%\n",
		peak, 100*(float64(arena)-float64(peak))/float64(peak))

	// Show the five largest resident buffers and their addresses.
	fmt.Println("\nlargest resident buffers (addr ranges are fixed for the whole lifetime):")
	items := append([]model.Placement(nil), res.Solution.Items...)
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if items[j].Task.Demand > items[i].Task.Demand {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	for i, p := range items {
		if i == 5 {
			break
		}
		fmt.Printf("  buffer %2d  %4d B  addr [%4d,%4d)  live [%d,%d)\n",
			p.Task.ID, p.Task.Demand, p.Height, p.Top(), p.Task.Start, p.Task.End)
	}
}
