// Quickstart: build a small SAP instance by hand, run the paper's combined
// (9+ε)-approximation, validate the schedule and print it.
package main

import (
	"fmt"
	"log"

	"sapalloc/internal/core"
	"sapalloc/internal/exact"
	"sapalloc/internal/model"
	"sapalloc/internal/viz"
)

func main() {
	// A path with four edges. Think of the edges as time slots and the
	// capacity as the amount of some contiguous resource (memory addresses,
	// banner pixels, frequency slots) available in each slot.
	in := &model.Instance{
		Capacity: []int64{100, 100, 60, 100},
		Tasks: []model.Task{
			{ID: 0, Start: 0, End: 2, Demand: 40, Weight: 8}, // large-ish
			{ID: 1, Start: 1, End: 4, Demand: 25, Weight: 9}, // medium
			{ID: 2, Start: 0, End: 4, Demand: 5, Weight: 3},  // small
			{ID: 3, Start: 2, End: 3, Demand: 35, Weight: 7}, // large on the narrow edge
			{ID: 4, Start: 0, End: 1, Demand: 50, Weight: 4},
			{ID: 5, Start: 3, End: 4, Demand: 60, Weight: 6},
		},
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("bad instance: %v", err)
	}

	// Solve with the combined algorithm of Theorem 4. The result records
	// which of the three arms (small / medium / large) won. Workers: 0 lets
	// the three arms run on all cores; the result is identical to a
	// sequential solve (Workers: 1) — parallelism only changes wall clock.
	res, err := core.Solve(in, core.Params{Eps: 0.5, Workers: 0})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	// Every solution the library returns is feasible; double-check anyway —
	// ValidSAP is the library's ground truth for the two SAP constraints
	// (capacity and vertical disjointness on shared edges).
	if err := model.ValidSAP(in, res.Solution); err != nil {
		log.Fatalf("infeasible (library bug): %v", err)
	}

	fmt.Printf("winner arm: %s\n", res.Winner)
	fmt.Printf("%s\n\n", viz.Summary(in, res.Solution))
	fmt.Print(viz.RenderSolution(in, res.Solution, viz.Options{MaxRows: 16}))
	fmt.Print(viz.Legend(in, res.Solution))

	// The instance is tiny, so the exact branch-and-bound can certify how
	// far the approximation landed from the true optimum.
	opt, err := exact.SolveSAP(in, exact.Options{})
	if err != nil {
		log.Fatalf("exact: %v", err)
	}
	fmt.Printf("\nexact optimum: %d → measured ratio %.2f (proven bound 9+ε)\n",
		opt.Weight(), float64(opt.Weight())/float64(res.Solution.Weight()))
}
