// Contiguous spectrum assignment: the third scenario from the paper's
// introduction — "a task may require bandwidth, but will only accept a
// contiguous set of frequencies or wavelengths". The path is a fiber route
// whose segments have different numbers of wavelength slots (non-uniform
// capacities); each connection request needs a contiguous slot range along
// its entire route.
//
// The example shows why non-uniform capacities matter: the bottleneck
// classification (Figure 2 of the paper) drives which algorithm arm handles
// each request.
package main

import (
	"fmt"
	"log"

	"sapalloc/internal/core"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
)

func main() {
	net := gen.Spectrum(gen.SpectrumConfig{Seed: 5, Segments: 20, Demands: 40, BaseSlots: 32})
	fmt.Printf("fiber route: %d segments, capacities %v\n", net.Edges(), net.Capacity)
	fmt.Printf("requests: %d connections\n\n", len(net.Tasks))

	// Show the Theorem 4 partition (k=2, β=¼, δ=1/16).
	small, medium, large := core.Partition(net, 16)
	fmt.Printf("size classes (vs own bottleneck): %d small, %d medium, %d large\n",
		len(small), len(medium), len(large))

	res, err := core.Solve(net, core.Params{Eps: 0.5})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := model.ValidSAP(net, res.Solution); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("admitted: %d/%d connections, value %d/%d (winner: %s)\n\n",
		res.Solution.Len(), len(net.Tasks), res.Solution.Weight(), net.TotalWeight(), res.Winner)

	// Per-connection report: assigned slot ranges are contiguous along the
	// whole route — the defining SAP constraint.
	fmt.Println("assigned slot ranges (first 10):")
	for i, p := range res.Solution.Items {
		if i == 10 {
			break
		}
		fmt.Printf("  conn %2d  segments [%2d,%2d)  slots [%d,%d)\n",
			p.Task.ID, p.Task.Start, p.Task.End, p.Height, p.Top())
	}
}
