// Flexible ad scheduling: the time-window extension of SAP (related work
// [5]/[26] in the paper). Advertisers book a banner stripe of fixed height
// for a fixed number of days, but accept any placement inside a wider date
// window. Sliding bookings inside their windows admits strictly more
// revenue than fixed dates — the example quantifies that.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sapalloc/internal/window"
)

func main() {
	// Two weeks of banner inventory, 300px tall.
	const days = 14
	in := &window.Instance{Capacity: make([]int64, days)}
	for e := range in.Capacity {
		in.Capacity[e] = 300
	}
	r := rand.New(rand.NewSource(4))
	heights := []int64{60, 90, 120, 150}
	for i := 0; i < 9; i++ {
		length := 2 + r.Intn(4)
		rel := r.Intn(days - length + 1)
		h := heights[r.Intn(len(heights))]
		in.Tasks = append(in.Tasks, window.Task{
			ID: i, Release: rel, Deadline: rel + length, Length: length,
			Demand: h, Weight: h * int64(length) / 10,
		})
	}
	if err := in.Validate(); err != nil {
		log.Fatalf("bad instance: %v", err)
	}

	fmt.Printf("bookings: %d ads over %d days, banner height 300px\n\n", len(in.Tasks), days)
	fmt.Println("revenue as booking flexibility grows (exact optimum per slack):")
	var fixed int64
	for _, slack := range []int{0, 1, 2, 3, 5} {
		wide := window.Widen(in, slack)
		sol, err := window.SolveExact(wide, window.Options{})
		if err != nil {
			log.Fatalf("solve: %v", err)
		}
		if err := window.Valid(wide, sol); err != nil {
			log.Fatalf("infeasible: %v", err)
		}
		if slack == 0 {
			fixed = sol.Weight()
		}
		gain := ""
		if fixed > 0 && sol.Weight() > fixed {
			gain = fmt.Sprintf("  (+%.0f%% over fixed dates)", 100*float64(sol.Weight()-fixed)/float64(fixed))
		}
		fmt.Printf("  ±%d days: %2d/%d ads aired, revenue %4d%s\n",
			slack, sol.Len(), len(in.Tasks), sol.Weight(), gain)
	}

	// Show the most flexible schedule.
	wide := window.Widen(in, 5)
	sol, err := window.SolveExact(wide, window.Options{})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Println("\nfinal schedule at ±5 days:")
	for _, p := range sol.Items {
		fmt.Printf("  ad %d  days [%2d,%2d)  stripe [%3d,%3d)px  window was [%d,%d)\n",
			p.Task.ID, p.Start, p.End(), p.Height, p.Top(), p.Task.Release, p.Task.Deadline)
	}
}
