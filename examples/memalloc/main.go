// Memory allocation: the storage-allocation reading of SAP from the
// paper's introduction. The path is time, the capacity is a fixed heap, and
// each object needs a contiguous address range for its whole lifetime. The
// allocator must pick which objects to keep resident (the rest would be
// swapped/recomputed) and where to place them, maximising the total value
// of resident objects.
//
// The example generates a synthetic malloc trace, runs the combined
// algorithm, compares against the UFPP LP upper bound, and prints heap-
// utilisation statistics.
package main

import (
	"fmt"
	"log"

	"sapalloc/internal/core"
	"sapalloc/internal/gen"
	"sapalloc/internal/lp"
	"sapalloc/internal/model"
)

func main() {
	trace := gen.MemTrace(gen.MemTraceConfig{
		Seed:    7,
		Slots:   48,  // 48 time steps
		Objects: 100, // 100 allocation requests
		Heap:    2048,
	})
	fmt.Printf("trace: %d objects over %d time steps, heap = %d bytes\n",
		len(trace.Tasks), trace.Edges(), trace.Capacity[0])

	res, err := core.Solve(trace, core.Params{Eps: 0.5})
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := model.ValidSAP(trace, res.Solution); err != nil {
		log.Fatalf("infeasible: %v", err)
	}

	_, lpBound, err := lp.UFPPFractional(trace)
	if err != nil {
		log.Fatalf("lp: %v", err)
	}

	fmt.Printf("resident objects: %d/%d\n", res.Solution.Len(), len(trace.Tasks))
	fmt.Printf("resident value:   %d (LP upper bound %.0f → within factor %.2f)\n",
		res.Solution.Weight(), lpBound, lpBound/float64(res.Solution.Weight()))
	fmt.Printf("winning arm:      %s (small=%d medium=%d large=%d)\n",
		res.Winner, res.SmallWeight, res.MediumWeight, res.LargeWeight)

	// Heap utilisation per time step.
	mu := res.Solution.Makespan(trace.Edges())
	load := trace.Load(res.Solution.Tasks())
	var peakMu, peakLoad int64
	for e := range mu {
		if mu[e] > peakMu {
			peakMu = mu[e]
		}
		if load[e] > peakLoad {
			peakLoad = load[e]
		}
	}
	fmt.Printf("peak address used: %d / %d (fragmentation overhead %.1f%%)\n",
		peakMu, trace.Capacity[0], 100*float64(peakMu-peakLoad)/float64(trace.Capacity[0]))
}
