package sapalloc_test

// Golden regression tests: exact optima of the paper's figure instances and
// deterministic outputs of the pipelines on fixed seeds, pinned so that any
// future change to a solver that silently alters results fails loudly.
// (Exact optima are invariant truths of the instances; pipeline outputs are
// deterministic by design — per-trial RNGs and ordered merges.)

import (
	"testing"

	"sapalloc/internal/core"
	"sapalloc/internal/exact"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/oracle"
	"sapalloc/internal/ringsap"
	"sapalloc/internal/smallsap"
)

func TestGoldenExactOptima(t *testing.T) {
	cases := []struct {
		name      string
		in        *model.Instance
		sap, ufpp int64
	}{
		{"fig1a", gen.Fig1a(), 1, 2},
		{"fig1b", gen.Fig1b(), 6, 7},
		{"fig8", gen.Fig8(), 5, 5},
		{"mix1", gen.Random(gen.Config{Seed: 1001, Edges: 4, Tasks: 9, CapLo: 16, CapHi: 65, Class: gen.Mixed}), 337, 337},
		{"mix2", gen.Random(gen.Config{Seed: 1002, Edges: 5, Tasks: 10, CapLo: 16, CapHi: 65, Class: gen.Mixed}), 277, 277},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt, err := exact.SolveSAP(c.in, exact.Options{})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if opt.Weight() != c.sap {
				t.Errorf("SAP OPT = %d, want %d", opt.Weight(), c.sap)
			}
			u, err := exact.SolveUFPP(c.in, exact.Options{})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if model.WeightOf(u) != c.ufpp {
				t.Errorf("UFPP OPT = %d, want %d", model.WeightOf(u), c.ufpp)
			}
		})
	}
}

func TestGoldenPipelineOutputs(t *testing.T) {
	in := gen.Random(gen.Config{Seed: 2001, Edges: 10, Tasks: 80, CapLo: 256, CapHi: 1025, Class: gen.Small})
	sp, err := smallsap.Solve(in, smallsap.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if sp.Solution.Weight() != 2170 {
		t.Errorf("strip-pack(seed 2001) = %d, want 2170", sp.Solution.Weight())
	}

	cb, err := core.Solve(gen.Random(gen.Config{Seed: 2002, Edges: 8, Tasks: 40, CapLo: 64, CapHi: 257, Class: gen.Mixed}), core.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if cb.Solution.Weight() != 655 {
		t.Errorf("combined(seed 2002) = %d, want 655", cb.Solution.Weight())
	}

	ring := gen.Ring(2003, 6, 10, 16, 64)
	rr, err := ringsap.Solve(ring, ringsap.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rr.Solution.Weight() != 412 {
		t.Errorf("ring(seed 2003) = %d, want 412", rr.Solution.Weight())
	}
}

// TestGoldenRingOptima pins exact ring optima and the deterministic
// (10+ε)-pipeline outputs on fixed ring seeds, mirroring the path golden
// cases above. The exact values are invariant truths of the instances; the
// ringsap values are deterministic by design.
func TestGoldenRingOptima(t *testing.T) {
	cases := []struct {
		name          string
		seed          int64
		edges, tasks  int
		exact, approx int64
	}{
		{"ring901", 901, 4, 6, 337, 326},
		{"ring902", 902, 5, 7, 371, 346},
		{"ring903", 903, 6, 8, 313, 247},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ring := gen.Ring(c.seed, c.edges, c.tasks, 8, 33)
			opt, err := exact.SolveRingSAP(ring, exact.Options{MaxNodes: 30_000_000})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if opt.Weight() != c.exact {
				t.Errorf("ring OPT = %d, want %d", opt.Weight(), c.exact)
			}
			if err := oracle.CheckRing(ring, opt); err != nil {
				t.Errorf("exact solution: %v", err)
			}
			res, err := ringsap.Solve(ring, ringsap.Params{})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if res.Solution.Weight() != c.approx {
				t.Errorf("ringsap = %d, want %d", res.Solution.Weight(), c.approx)
			}
			if err := oracle.CheckRing(ring, res.Solution); err != nil {
				t.Errorf("ringsap solution: %v", err)
			}
		})
	}
}
