package sapalloc_test

// Golden regression tests: exact optima of the paper's figure instances and
// deterministic outputs of the pipelines on fixed seeds, pinned so that any
// future change to a solver that silently alters results fails loudly.
// (Exact optima are invariant truths of the instances; pipeline outputs are
// deterministic by design — per-trial RNGs and ordered merges.)

import (
	"testing"

	"sapalloc/internal/core"
	"sapalloc/internal/exact"
	"sapalloc/internal/gen"
	"sapalloc/internal/model"
	"sapalloc/internal/ringsap"
	"sapalloc/internal/smallsap"
)

func TestGoldenExactOptima(t *testing.T) {
	cases := []struct {
		name      string
		in        *model.Instance
		sap, ufpp int64
	}{
		{"fig1a", gen.Fig1a(), 1, 2},
		{"fig1b", gen.Fig1b(), 6, 7},
		{"fig8", gen.Fig8(), 5, 5},
		{"mix1", gen.Random(gen.Config{Seed: 1001, Edges: 4, Tasks: 9, CapLo: 16, CapHi: 65, Class: gen.Mixed}), 337, 337},
		{"mix2", gen.Random(gen.Config{Seed: 1002, Edges: 5, Tasks: 10, CapLo: 16, CapHi: 65, Class: gen.Mixed}), 277, 277},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt, err := exact.SolveSAP(c.in, exact.Options{})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if opt.Weight() != c.sap {
				t.Errorf("SAP OPT = %d, want %d", opt.Weight(), c.sap)
			}
			u, err := exact.SolveUFPP(c.in, exact.Options{})
			if err != nil {
				t.Fatalf("%v", err)
			}
			if model.WeightOf(u) != c.ufpp {
				t.Errorf("UFPP OPT = %d, want %d", model.WeightOf(u), c.ufpp)
			}
		})
	}
}

func TestGoldenPipelineOutputs(t *testing.T) {
	in := gen.Random(gen.Config{Seed: 2001, Edges: 10, Tasks: 80, CapLo: 256, CapHi: 1025, Class: gen.Small})
	sp, err := smallsap.Solve(in, smallsap.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if sp.Solution.Weight() != 2170 {
		t.Errorf("strip-pack(seed 2001) = %d, want 2170", sp.Solution.Weight())
	}

	cb, err := core.Solve(gen.Random(gen.Config{Seed: 2002, Edges: 8, Tasks: 40, CapLo: 64, CapHi: 257, Class: gen.Mixed}), core.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if cb.Solution.Weight() != 655 {
		t.Errorf("combined(seed 2002) = %d, want 655", cb.Solution.Weight())
	}

	ring := gen.Ring(2003, 6, 10, 16, 64)
	rr, err := ringsap.Solve(ring, ringsap.Params{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rr.Solution.Weight() != 412 {
		t.Errorf("ring(seed 2003) = %d, want 412", rr.Solution.Weight())
	}
}
