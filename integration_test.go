package sapalloc_test

// Cross-package integration and property tests: the full pipelines run on
// randomized workloads with machine-checked invariants, failure injection
// against the validators, and determinism checks for the parallel paths.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sapalloc/internal/chendp"
	"sapalloc/internal/core"
	"sapalloc/internal/dsa"
	"sapalloc/internal/exact"
	"sapalloc/internal/gen"
	"sapalloc/internal/lp"
	"sapalloc/internal/mediumsap"
	"sapalloc/internal/model"
	"sapalloc/internal/oracle"
	"sapalloc/internal/ringsap"
	"sapalloc/internal/smallsap"
)

// TestCombinedAlwaysFeasible is the library's umbrella property: for any
// generated workload the combined algorithm returns a feasible solution
// whose weight never exceeds the LP upper bound.
func TestCombinedAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := gen.Random(gen.Config{
			Seed:  seed,
			Edges: 2 + r.Intn(10),
			Tasks: 1 + r.Intn(30),
			CapLo: 4 + r.Int63n(60),
			CapHi: 65 + r.Int63n(600),
			Class: gen.Class(r.Intn(4)),
		})
		res, err := core.Solve(in, core.Params{})
		if err != nil {
			return false
		}
		if oracle.CheckSAP(in, res.Solution) != nil {
			return false
		}
		_, bound, err := lp.UFPPFractional(in)
		if err != nil {
			return false
		}
		return float64(res.Solution.Weight()) <= bound+1e-6*(1+bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRingAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ring := gen.Ring(seed, 3+r.Intn(8), 1+r.Intn(15), 8, 64)
		res, err := ringsap.Solve(ring, ringsap.Params{})
		if err != nil {
			return false
		}
		return oracle.CheckRing(ring, res.Solution) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestValidatorFailureInjection corrupts known-feasible solutions and
// checks the validator rejects every corruption class.
func TestValidatorFailureInjection(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		in := gen.Random(gen.Config{Seed: int64(trial), Edges: 4 + r.Intn(6), Tasks: 10 + r.Intn(20), CapLo: 64, CapHi: 257, Class: gen.Small})
		res, err := core.Solve(in, core.Params{})
		if err != nil {
			t.Fatalf("%v", err)
		}
		sol := res.Solution
		if sol.Len() < 2 {
			continue
		}
		// Corruption 1: push a task above every capacity it sees.
		bad := sol.Clone()
		bad.Items[0].Height = in.Bottleneck(bad.Items[0].Task) // top = b + d > b
		if model.ValidSAP(in, bad) == nil {
			t.Fatalf("trial %d: capacity violation not caught", trial)
		}
		if v, ok := oracle.As(oracle.CheckSAP(in, bad)); !ok || v.Kind != oracle.KindCapacity {
			t.Fatalf("trial %d: oracle misclassified capacity violation: %v", trial, v)
		}
		// Corruption 2: drop two overlapping tasks onto each other.
		bad2 := sol.Clone()
		collided := false
		for i := 0; i < bad2.Len() && !collided; i++ {
			for j := i + 1; j < bad2.Len(); j++ {
				if bad2.Items[i].Task.Overlaps(bad2.Items[j].Task) {
					bad2.Items[j].Height = bad2.Items[i].Height
					collided = true
					break
				}
			}
		}
		if collided {
			if model.ValidSAP(in, bad2) == nil {
				t.Fatalf("trial %d: vertical overlap not caught", trial)
			}
			// Moving a task onto another can also lift it above capacity;
			// either classification is correct.
			if v, ok := oracle.As(oracle.CheckSAP(in, bad2)); !ok || (v.Kind != oracle.KindOverlap && v.Kind != oracle.KindCapacity) {
				t.Fatalf("trial %d: oracle misclassified overlap: %v", trial, v)
			}
		}
		// Corruption 3: negative height.
		bad3 := sol.Clone()
		bad3.Items[0].Height = -1
		if model.ValidSAP(in, bad3) == nil {
			t.Fatalf("trial %d: negative height not caught", trial)
		}
		if v, ok := oracle.As(oracle.CheckSAP(in, bad3)); !ok || v.Kind != oracle.KindNegativeHeight {
			t.Fatalf("trial %d: oracle misclassified negative height: %v", trial, v)
		}
		// Corruption 4: smuggle in a task not in the instance.
		bad4 := sol.Clone()
		bad4.Items = append(bad4.Items, model.Placement{
			Task: model.Task{ID: 9999, Start: 0, End: 1, Demand: 1, Weight: 1},
		})
		if model.ValidSAP(in, bad4) == nil {
			t.Fatalf("trial %d: foreign task not caught", trial)
		}
		if v, ok := oracle.As(oracle.CheckSAP(in, bad4)); !ok || v.Kind != oracle.KindUnknownTask {
			t.Fatalf("trial %d: oracle misclassified foreign task: %v", trial, v)
		}
	}
}

// TestGravityOnPipelineOutput: compacting any pipeline output keeps it
// feasible, keeps the weight, and never raises a task.
func TestGravityOnPipelineOutput(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		in := gen.Random(gen.Config{Seed: int64(100 + trial), Edges: 4 + r.Intn(6), Tasks: 20, CapLo: 64, CapHi: 257, Class: gen.Small})
		res, err := smallsap.Solve(in, smallsap.Params{})
		if err != nil {
			t.Fatalf("%v", err)
		}
		g := dsa.Gravity(res.Solution)
		if err := oracle.CheckSAP(in, g); err != nil {
			t.Fatalf("trial %d: gravity broke pipeline output: %v", trial, err)
		}
		if g.Weight() != res.Solution.Weight() {
			t.Fatalf("trial %d: gravity changed weight", trial)
		}
		if !dsa.IsGrounded(g) {
			t.Fatalf("trial %d: gravity output not grounded", trial)
		}
	}
}

// TestParallelDeterminism: the parallel class solves must produce exactly
// the same result regardless of worker count.
func TestParallelDeterminism(t *testing.T) {
	in := gen.Random(gen.Config{Seed: 77, Edges: 6, Tasks: 24, CapLo: 64, CapHi: 4097, Class: gen.Medium})
	res1, err := mediumsap.Solve(in, mediumsap.Params{Eps: 0.5, Workers: 1})
	if err != nil {
		t.Fatalf("%v", err)
	}
	res8, err := mediumsap.Solve(in, mediumsap.Params{Eps: 0.5, Workers: 8})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if res1.Solution.Weight() != res8.Solution.Weight() || res1.Residue != res8.Residue {
		t.Fatalf("parallel mediumsap not deterministic: w=%d/%d r=%d/%d",
			res1.Solution.Weight(), res8.Solution.Weight(), res1.Residue, res8.Residue)
	}
	sp1, err := smallsap.Solve(in, smallsap.Params{Workers: 1})
	if err != nil {
		t.Fatalf("%v", err)
	}
	sp8, err := smallsap.Solve(in, smallsap.Params{Workers: 8})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if sp1.Solution.Weight() != sp8.Solution.Weight() {
		t.Fatalf("parallel smallsap not deterministic: %d vs %d", sp1.Solution.Weight(), sp8.Solution.Weight())
	}
}

// TestTwoExactSolversAgree cross-checks the branch-and-bound against the
// independently derived Chen-Hassin-Tzur DP on uniform instances — two
// exact algorithms with disjoint failure modes.
func TestTwoExactSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := int64(2 + r.Intn(5))
		in := gen.Uniform(seed, 2+r.Intn(5), 1+r.Intn(9), k, gen.Mixed)
		for j := range in.Tasks {
			if in.Tasks[j].Demand > k {
				in.Tasks[j].Demand = 1 + in.Tasks[j].Demand%k
			}
		}
		dp, err := chendp.Solve(in, chendp.Options{})
		if err != nil {
			return false
		}
		bb, err := exact.SolveSAP(in, exact.Options{})
		if err != nil {
			return false
		}
		return dp.Weight() == bb.Weight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDomainWorkloadsEndToEnd runs each domain generator through the
// combined pipeline (the examples' code path) under test control.
func TestDomainWorkloadsEndToEnd(t *testing.T) {
	workloads := map[string]*model.Instance{
		"memtrace": gen.MemTrace(gen.MemTraceConfig{Seed: 1, Slots: 32, Objects: 60}),
		"banner":   gen.Banner(gen.BannerConfig{Seed: 2, Days: 20, Ads: 40}),
		"spectrum": gen.Spectrum(gen.SpectrumConfig{Seed: 3, Segments: 16, Demands: 30}),
	}
	for name, in := range workloads {
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		res, err := core.Solve(in, core.Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := oracle.CheckSAP(in, res.Solution); err != nil {
			t.Fatalf("%s: infeasible: %v", name, err)
		}
		if res.Solution.Weight() <= 0 {
			t.Errorf("%s: empty solution", name)
		}
	}
}

// SolveSAPAuto dispatches thin small-capacity instances to the occupancy DP
// and everything else to the branch and bound; both must agree with the
// direct engines.
func TestSolveSAPAutoDispatch(t *testing.T) {
	dp := func(in *model.Instance) (*model.Solution, error) {
		if in.Uniform() {
			return chendp.Solve(in, chendp.Options{})
		}
		return chendp.SolveNonUniform(in, chendp.Options{})
	}
	r := rand.New(rand.NewSource(17))
	// Thin instance: K=4, n=20 → DP path.
	thin := gen.Uniform(5, 10, 20, 4, gen.Mixed)
	for j := range thin.Tasks {
		if thin.Tasks[j].Demand > 4 {
			thin.Tasks[j].Demand = 1 + thin.Tasks[j].Demand%4
		}
	}
	got, err := exact.SolveSAPAuto(thin, exact.Options{}, dp)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := oracle.CheckSAP(thin, got); err != nil {
		t.Fatalf("auto(thin) infeasible: %v", err)
	}
	direct, err := chendp.Solve(thin, chendp.Options{})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if got.Weight() != direct.Weight() {
		t.Fatalf("auto %d != DP %d", got.Weight(), direct.Weight())
	}
	// Small-n instances go to the branch and bound regardless of capacity.
	for trial := 0; trial < 10; trial++ {
		in := gen.Random(gen.Config{Seed: int64(trial), Edges: 2 + r.Intn(4), Tasks: 1 + r.Intn(7), CapLo: 4, CapHi: 33, Class: gen.Mixed})
		a, err := exact.SolveSAPAuto(in, exact.Options{}, dp)
		if err != nil {
			t.Fatalf("%v", err)
		}
		b, err := exact.SolveSAP(in, exact.Options{})
		if err != nil {
			t.Fatalf("%v", err)
		}
		if a.Weight() != b.Weight() {
			t.Fatalf("trial %d: auto %d != B&B %d", trial, a.Weight(), b.Weight())
		}
	}
}
