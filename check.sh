#!/bin/sh
# check.sh — the full local gate: formatting, vet, tests (with race on the
# concurrent packages), a short soak, and one pass over every benchmark.
#
#   ./check.sh         full gate
#   ./check.sh bench   pinned benchmark subset vs committed BENCH.json
#   ./check.sh alloc   alloc-budget tests + allocs/op regression gate
#   ./check.sh robust  fault-injection + cancellation suites under -race
#   ./check.sh cover   coverage run with the ratcheted floor (COVER_FLOOR)
#   ./check.sh fuzz    30s smoke of the pinned fuzz targets
#   ./check.sh serve   serving-layer suites (cache/singleflight/admission) under -race
#   ./check.sh shard   shard decomposition matrix (fall-through, determinism,
#                      component equivalence, cancel) under -race
#   ./check.sh dist    distributed fan-out: envelope unit suites + the
#                      distributed-vs-local matrix over live backends, -race
#   ./check.sh store   durable solve store: persistence suites under -race,
#                      incl. the kill-and-replay crash matrix and the
#                      warm-restart byte-identity pins
#   ./check.sh session incremental session engine: unit + churn byte-identity
#                      matrix, window cancellation/degeneracy pins, and the
#                      session HTTP API, all under -race
set -e

# Ratcheted coverage floor (percentage points). CI fails when total
# statement coverage drops more than 1pt below this; raise it when coverage
# grows so the ratchet never slips backwards. Re-anchored to the measured
# post-store total: the store lands heavily tested (>90% in internal/store)
# but brings two new untestable main() bodies (sapstore, the sapserved store
# wiring) that dilute the repo-wide statement ratio.
COVER_FLOOR=79.8

if [ "$1" = "bench" ]; then
    # The -minspeedup requirements gate the shard scatter's parallel scaling
    # and the session engine's incremental-vs-full work reduction on the
    # fresh report; they self-skip on machines with <4 processors, where
    # the ratios are unmeasurable.
    echo "== bench regression gate (BENCH.json) =="
    go run ./cmd/sapbench -json -out BENCH.fresh.json -baseline BENCH.json \
        -maxregress 0.30 -maxallocregress 0.10 \
        -minspeedup 'E30Shard/workers=4=2.0,E35SessionChurn/incremental=5.0'
    echo "BENCH GATE PASSED (fresh report in BENCH.fresh.json)"
    exit 0
fi

if [ "$1" = "alloc" ]; then
    # Two layers: explicit testing.AllocsPerRun budgets on the arena-backed
    # hot paths (exact numbers, fail fast), then the allocs/op side of the
    # BENCH.json gate (end-to-end counts on the pinned subset). Allocation
    # counts are machine-independent, so the 10% threshold needs no
    # calibration.
    echo "== alloc budgets (testing.AllocsPerRun) =="
    go test -count=1 -run 'TestAllocs' \
        ./internal/intervals/ ./internal/exact/ ./internal/largesap/ \
        ./internal/chendp/ ./internal/mediumsap/ ./internal/core/ \
        ./internal/window/
    echo "== allocs/op regression gate (BENCH.json) =="
    go run ./cmd/sapbench -json -out BENCH.fresh.json -baseline BENCH.json -maxregress 1000 -maxallocregress 0.10
    echo "ALLOC GATE PASSED (fresh report in BENCH.fresh.json)"
    exit 0
fi

if [ "$1" = "cover" ]; then
    echo "== coverage (floor ${COVER_FLOOR}%, 1pt grace) =="
    go test -count=1 -coverprofile=coverage.out ./...
    total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    echo "total statement coverage: ${total}% (floor ${COVER_FLOOR}%)"
    awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN {
        if (t + 1.0 < f) {
            printf "COVERAGE GATE FAILED: %.1f%% is more than 1pt below the %.1f%% floor\n", t, f
            exit 1
        }
        if (t > f + 1.0) {
            printf "note: coverage %.1f%% is above the floor; consider raising COVER_FLOOR in check.sh\n", t
        }
    }'
    echo "COVERAGE GATE PASSED"
    exit 0
fi

if [ "$1" = "fuzz" ]; then
    # 30s per target; the corpus seeds run as plain tests everywhere else,
    # so this verb is the only place new inputs are explored.
    fuzztime="${FUZZTIME:-30s}"
    echo "== fuzz smoke (${fuzztime} per target) =="
    go test -run '^$' -fuzz '^FuzzSolveSmallSAP$' -fuzztime "$fuzztime" ./internal/smallsap/
    go test -run '^$' -fuzz '^FuzzCoreSolve$' -fuzztime "$fuzztime" ./internal/core/
    go test -run '^$' -fuzz '^FuzzScratchReuse$' -fuzztime "$fuzztime" ./internal/exact/
    go test -run '^$' -fuzz '^FuzzValidateHardened$' -fuzztime "$fuzztime" ./internal/model/
    go test -run '^$' -fuzz '^FuzzReadInstanceJSON$' -fuzztime "$fuzztime" ./internal/model/
    go test -run '^$' -fuzz '^FuzzReadSolutionJSON$' -fuzztime "$fuzztime" ./internal/model/
    go test -run '^$' -fuzz '^FuzzShardStitch$' -fuzztime "$fuzztime" ./internal/shard/
    go test -run '^$' -fuzz '^FuzzShardWire$' -fuzztime "$fuzztime" ./internal/shard/
    go test -run '^$' -fuzz '^FuzzStoreRecord$' -fuzztime "$fuzztime" ./internal/store/
    go test -run '^$' -fuzz '^FuzzWindowJSON$' -fuzztime "$fuzztime" ./internal/window/
    echo "FUZZ SMOKE PASSED"
    exit 0
fi

if [ "$1" = "dist" ]; then
    # The distributed fan-out is concurrency all the way down (hedging
    # races, breaker state machines, the scatter itself), so everything
    # here runs -race: the envelope's unit suites, then the
    # distributed-vs-local byte-identity matrix against live in-process
    # backends — healthy pools, dead pools, mid-scatter backend death,
    # forced hedging, open breakers, and the transport fault sites.
    echo "== dist envelope: routing + retry/hedge/breaker units (-race) =="
    go test -race -timeout 10m -count=1 ./internal/dist/
    echo "== dist matrix: distributed-vs-local byte identity (-race, workers 1/2/8) =="
    go test -race -timeout 15m -count=1 -run 'TestDist' ./internal/difftest/
    go build ./cmd/sapserved ./cmd/sapstress
    echo "DIST GATE PASSED"
    exit 0
fi

if [ "$1" = "store" ]; then
    # The durable solve store is crash-recovery code: everything runs under
    # -race, including the re-exec kill-and-replay suite (a child process
    # dies over the faultinject torn-write site — and once via SIGKILL —
    # and this process replays the directory), the serving layer's
    # read-through wiring, and the end-to-end warm-restart and torn-tail
    # difftest pins.
    echo "== store: record codec + merkle chain + file store (-race) =="
    go test -race -timeout 10m -count=1 ./internal/store/ ./cmd/sapstore/
    echo "== store: kill-and-replay crash recovery (-race) =="
    go test -race -timeout 10m -count=1 -run 'TestStoreCrash' ./internal/store/
    echo "== store: serving-layer read-through + warm restart (-race) =="
    go test -race -timeout 10m -count=1 -run 'TestServeStore|TestRetryAfter|TestBacked' ./internal/serve/ ./internal/sapcache/
    echo "== store: difftest warm-restart + torn-tail pins (-race) =="
    go test -race -timeout 15m -count=1 -run 'TestStore' ./internal/difftest/
    go build ./cmd/sapserved ./cmd/sapstore
    echo "STORE GATE PASSED"
    exit 0
fi

if [ "$1" = "session" ]; then
    # The incremental engine's contract is byte-identity with a cold solve
    # under concurrent churn, so everything runs -race: the session/table
    # unit suites, the difftest churn matrix (workers 1/2/8) plus the
    # window cancellation and degenerate-window pins that rode along, and
    # the session HTTP API (lifecycle, admission bound, draining,
    # concurrent deltas).
    echo "== session engine: delta/cache/table units (-race) =="
    go test -race -timeout 10m -count=1 ./internal/session/ ./internal/window/
    echo "== session churn matrix: incremental-vs-cold byte identity (-race, workers 1/2/8) =="
    go test -race -timeout 15m -count=1 -run 'TestSession|TestWindowCancel|TestWindowDegenerate' ./internal/difftest/
    echo "== session HTTP API (-race) =="
    go test -race -timeout 10m -count=1 -run 'TestServeSession' ./internal/serve/
    go build ./cmd/sapserved ./cmd/sapstress
    echo "SESSION GATE PASSED"
    exit 0
fi

if [ "$1" = "serve" ]; then
    # The serving layer's whole value is concurrent behaviour (cache,
    # singleflight, admission control), so its suites always run -race.
    echo "== serving layer: cache + singleflight + admission (-race) =="
    go test -race -timeout 10m -count=1 ./internal/sapcache/ ./internal/serve/
    echo "== serving layer: differential matrix over HTTP (-race) =="
    go test -race -timeout 15m -count=1 -run 'TestServeMatches' ./internal/difftest/
    go build ./cmd/sapserved
    echo "SERVE GATE PASSED"
    exit 0
fi

if [ "$1" = "shard" ]; then
    # The decomposition's correctness matrix: byte-identical fall-through
    # on undecomposable instances, workers-determinism and per-shard
    # component equivalence on archipelagos, cancel-mid-scatter partials,
    # and the copy-on-write capacity contract — all under the race
    # detector, since the scatter is the coarsest concurrency in the
    # pipeline. The parallel-determinism matrix rides along: sharding is on
    # by default, so it now covers the fall-through dispatch too.
    echo "== shard decomposition matrix (-race, workers 1/2/8) =="
    go test -race -timeout 15m -count=1 -run 'TestShard|TestParallelDeterminism' ./internal/difftest/
    go test -race -timeout 10m -count=1 ./internal/shard/ ./internal/gen/
    echo "SHARD GATE PASSED"
    exit 0
fi

if [ "$1" = "robust" ]; then
    # The -timeout doubles as the hang gate: an injected fault that wedges
    # a solver trips the suite instead of stalling CI forever.
    echo "== robustness: fault-injection matrix + cancellation (-race) =="
    go test -race -timeout 10m -count=1 \
        -run 'TestFaultInjection|TestCancelMidSolve|TestDeadline|TestSolveCtx|TestArmPanic|TestAllArms|TestForEachCtx|TestForEachPanic' \
        ./internal/difftest/ ./internal/core/ ./internal/par/
    go test -race -timeout 5m -count=1 ./internal/faultinject/ ./internal/saperr/
    echo "== robustness: hardened-input fuzz seeds =="
    go test -timeout 5m -count=1 -run Fuzz ./internal/model/
    echo "ROBUSTNESS GATE PASSED"
    exit 0
fi
echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }
echo "== go vet =="
go vet ./...
echo "== go test =="
go test ./...
echo "== race =="
# Race-check everything: a hard-coded package list silently rots as
# concurrency spreads (it had already missed core's parallel arms). The
# explicit timeout covers the parallel-determinism matrix, which solves
# every difftest case three times under the race detector.
go test -race -timeout 30m ./...
echo "== soak (10s) =="
go run ./cmd/sapstress -duration 10s -seed 1
echo "== benches (1x) =="
go test -run XXX -bench . -benchtime 1x .
echo "ALL CHECKS PASSED"
