#!/bin/sh
# check.sh — the full local gate: formatting, vet, tests (with race on the
# concurrent packages), a short soak, and one pass over every benchmark.
#
#   ./check.sh         full gate
#   ./check.sh bench   pinned benchmark subset vs committed BENCH.json
#   ./check.sh robust  fault-injection + cancellation suites under -race
set -e

if [ "$1" = "bench" ]; then
    echo "== bench regression gate (BENCH.json) =="
    go run ./cmd/sapbench -json -out BENCH.fresh.json -baseline BENCH.json -maxregress 0.30
    echo "BENCH GATE PASSED (fresh report in BENCH.fresh.json)"
    exit 0
fi

if [ "$1" = "robust" ]; then
    # The -timeout doubles as the hang gate: an injected fault that wedges
    # a solver trips the suite instead of stalling CI forever.
    echo "== robustness: fault-injection matrix + cancellation (-race) =="
    go test -race -timeout 10m -count=1 \
        -run 'TestFaultInjection|TestCancelMidSolve|TestDeadline|TestSolveCtx|TestArmPanic|TestAllArms|TestForEachCtx|TestForEachPanic' \
        ./internal/difftest/ ./internal/core/ ./internal/par/
    go test -race -timeout 5m -count=1 ./internal/faultinject/ ./internal/saperr/
    echo "== robustness: hardened-input fuzz seeds =="
    go test -timeout 5m -count=1 -run Fuzz ./internal/model/
    echo "ROBUSTNESS GATE PASSED"
    exit 0
fi
echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }
echo "== go vet =="
go vet ./...
echo "== go test =="
go test ./...
echo "== race =="
# Race-check everything: a hard-coded package list silently rots as
# concurrency spreads (it had already missed core's parallel arms). The
# explicit timeout covers the parallel-determinism matrix, which solves
# every difftest case three times under the race detector.
go test -race -timeout 30m ./...
echo "== soak (10s) =="
go run ./cmd/sapstress -duration 10s -seed 1
echo "== benches (1x) =="
go test -run XXX -bench . -benchtime 1x .
echo "ALL CHECKS PASSED"
