#!/bin/sh
# check.sh — the full local gate: formatting, vet, tests (with race on the
# concurrent packages), a short soak, and one pass over every benchmark.
set -e
echo "== gofmt =="
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }
echo "== go vet =="
go vet ./...
echo "== go test =="
go test ./...
echo "== race =="
# Race-check everything: a hard-coded package list silently rots as
# concurrency spreads (it had already missed core's parallel arms).
go test -race ./...
echo "== soak (10s) =="
go run ./cmd/sapstress -duration 10s -seed 1
echo "== benches (1x) =="
go test -run XXX -bench . -benchtime 1x .
echo "ALL CHECKS PASSED"
