module sapalloc

go 1.22
